"""Textual front end for Rela specifications.

The embedded-in-Python API (:mod:`repro.rela.spec`) is the primary interface,
mirroring the paper's implementation of Rela as a Python-embedded DSL.  This
module additionally provides a small standalone text format so specs can be
stored in change tickets and version control.  Example::

    regex a1 := where(group == "A1")
    regex d1 := where(group == "D1")
    regex oldpath := a1 b1 b2 b3 d1
    regex newpath := a1 a2 a3 d1

    spec pathShift := { a1 .* d1 : any(newpath) ; }
    spec e2e := { a* : preserve ; pathShift ; d* : preserve ; }
    spec nochange := { .* : preserve ; }
    spec change := e2e else nochange

    pspec dealloc := (dstPrefix == 10.0.0.0/24) -> change

Statements, one per line (blank lines and ``#`` comments are ignored):

``regex NAME := EXPR``
    Defines a named path expression.  ``EXPR`` is either a ``where(...)``
    database query or a path regex; previously defined names can be used as
    atoms.

``spec NAME := { ITEM ; ITEM ; ... }``
    Defines a (possibly sequential) spec.  Each ``ITEM`` is either
    ``ZONE : MODIFIER`` or the name of a previously defined spec.

``spec NAME := NAME else NAME [else NAME ...]``
    Defines a prioritized union of previously defined specs.

``pspec NAME := (PREDICATE) -> SPECNAME``
    Defines a prefix-guarded spec.  Predicates support ``dstPrefix``,
    ``srcPrefix`` (with ``==`` meaning "is contained in") and ``ingress in
    [loc, ...]``, combined with ``and`` / ``or`` / ``not``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.automata.regex import Regex, parse_regex
from repro.errors import SpecSyntaxError
from repro.rela import modifiers as mods
from repro.rela.locations import Granularity, LocationDB
from repro.rela.pspec import (
    DstPrefixWithin,
    IngressIn,
    PredAnd,
    PredNot,
    PredOr,
    PrefixPredicate,
    PSpec,
    SrcPrefixWithin,
)
from repro.rela.spec import AtomicSpec, RelaSpec, SeqSpec, else_chain


@dataclass(slots=True)
class ParsedProgram:
    """The result of parsing a Rela program text."""

    regexes: dict[str, Regex] = field(default_factory=dict)
    specs: dict[str, RelaSpec] = field(default_factory=dict)
    pspecs: dict[str, PSpec] = field(default_factory=dict)

    def spec(self, name: str) -> RelaSpec:
        """Look up a named spec."""
        try:
            return self.specs[name]
        except KeyError:
            raise SpecSyntaxError(f"unknown spec {name!r}") from None


_STATEMENT_RE = re.compile(
    r"^(?P<kind>regex|spec|pspec)\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*:=\s*(?P<body>.+)$"
)
_WHERE_RE = re.compile(r"^where\s*\((?P<query>.*)\)\s*$", re.DOTALL)


class RelaParser:
    """Parser for the textual Rela format."""

    def __init__(
        self,
        db: LocationDB | None = None,
        *,
        granularity: Granularity = Granularity.ROUTER,
    ):
        self.db = db
        self.granularity = granularity

    # ------------------------------------------------------------------
    # Program level
    # ------------------------------------------------------------------
    def parse_program(self, text: str) -> ParsedProgram:
        """Parse a whole program (sequence of statements)."""
        program = ParsedProgram()
        for line_number, raw_line in enumerate(self._logical_lines(text), start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            match = _STATEMENT_RE.match(line)
            if match is None:
                raise SpecSyntaxError(f"cannot parse statement on line {line_number}: {line!r}")
            kind = match.group("kind")
            name = match.group("name")
            body = match.group("body").strip()
            if kind == "regex":
                program.regexes[name] = self._parse_regex_body(body, program)
            elif kind == "spec":
                program.specs[name] = self._parse_spec_body(body, program).named(name)
            else:
                program.pspecs[name] = self._parse_pspec_body(body, program, name)
        return program

    @staticmethod
    def _logical_lines(text: str) -> list[str]:
        """Join statements that span multiple physical lines (open braces)."""
        lines: list[str] = []
        buffer = ""
        depth = 0
        for physical in text.splitlines():
            stripped = physical.split("#", 1)[0]
            buffer = f"{buffer} {stripped}".strip() if buffer else stripped
            depth = buffer.count("{") - buffer.count("}") + buffer.count("(") - buffer.count(")")
            if depth <= 0 and buffer:
                lines.append(buffer)
                buffer = ""
        if buffer:
            lines.append(buffer)
        return lines

    # ------------------------------------------------------------------
    # regex statements
    # ------------------------------------------------------------------
    def _parse_regex_body(self, body: str, program: ParsedProgram) -> Regex:
        where_match = _WHERE_RE.match(body)
        if where_match is not None:
            if self.db is None:
                raise SpecSyntaxError("where(...) queries require a LocationDB")
            return self.db.where(where_match.group("query"), granularity=self.granularity)
        return self.parse_path_expression(body, program)

    def parse_path_expression(self, text: str, program: ParsedProgram | None = None) -> Regex:
        """Parse a path regex, resolving names defined earlier in the program."""
        defined = program.regexes if program is not None else {}

        def resolve(identifier: str) -> Regex | None:
            return defined.get(identifier)

        return parse_regex(text, resolve)

    # ------------------------------------------------------------------
    # spec statements
    # ------------------------------------------------------------------
    def _parse_spec_body(self, body: str, program: ParsedProgram) -> RelaSpec:
        if body.startswith("{"):
            if not body.endswith("}"):
                raise SpecSyntaxError(f"unterminated spec body: {body!r}")
            return self._parse_spec_items(body[1:-1], program)
        # "a else b else c" over previously defined spec names.
        names = [part.strip() for part in body.split(" else ")]
        if len(names) < 2:
            raise SpecSyntaxError(
                f"spec body must be '{{ ... }}' or an else-chain of names: {body!r}"
            )
        branches = [program.spec(name) for name in names]
        return else_chain(*branches)

    def _parse_spec_items(self, body: str, program: ParsedProgram) -> RelaSpec:
        items = [item.strip() for item in body.split(";")]
        parts: list[RelaSpec] = []
        for item in items:
            if not item:
                continue
            if item in program.specs:
                parts.append(program.specs[item])
                continue
            if ":" not in item:
                raise SpecSyntaxError(
                    f"spec item must be 'zone : modifier' or a spec name: {item!r}"
                )
            zone_text, modifier_text = item.split(":", 1)
            zone = self.parse_path_expression(zone_text.strip(), program)
            modifier = self._parse_modifier(modifier_text.strip(), program)
            parts.append(AtomicSpec(zone, modifier))
        if not parts:
            raise SpecSyntaxError("spec body has no items")
        if len(parts) == 1:
            return parts[0]
        return SeqSpec(tuple(parts))

    def _parse_modifier(self, text: str, program: ParsedProgram) -> mods.Modifier:
        if text == "preserve":
            return mods.Preserve()
        if text == "drop":
            return mods.Drop()
        call = re.match(r"^(?P<fn>add|remove|replace|any)\s*\((?P<args>.*)\)$", text)
        if call is None:
            raise SpecSyntaxError(f"unknown modifier {text!r}")
        fn = call.group("fn")
        args = self._split_args(call.group("args"))
        if fn == "add" and len(args) == 1:
            return mods.Add(self.parse_path_expression(args[0], program))
        if fn == "remove" and len(args) == 1:
            return mods.Remove(self.parse_path_expression(args[0], program))
        if fn == "any" and len(args) == 1:
            return mods.Any(self.parse_path_expression(args[0], program))
        if fn == "replace" and len(args) == 2:
            return mods.Replace(
                self.parse_path_expression(args[0], program),
                self.parse_path_expression(args[1], program),
            )
        raise SpecSyntaxError(f"modifier {fn!r} given {len(args)} argument(s)")

    @staticmethod
    def _split_args(text: str) -> list[str]:
        args: list[str] = []
        depth = 0
        current = ""
        for char in text:
            if char == "," and depth == 0:
                args.append(current.strip())
                current = ""
                continue
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            current += char
        if current.strip():
            args.append(current.strip())
        return args

    # ------------------------------------------------------------------
    # pspec statements
    # ------------------------------------------------------------------
    def _parse_pspec_body(self, body: str, program: ParsedProgram, name: str) -> PSpec:
        if "->" not in body:
            raise SpecSyntaxError(f"pspec must have the form '(pred) -> spec': {body!r}")
        predicate_text, spec_name = body.rsplit("->", 1)
        predicate = self.parse_predicate(predicate_text.strip())
        spec = program.spec(spec_name.strip())
        return PSpec(predicate, spec, name)

    def parse_predicate(self, text: str) -> PrefixPredicate:
        """Parse a prefix predicate expression."""
        tokens = _tokenize_predicate(text)
        parser = _PredicateParser(tokens, text)
        predicate = parser.parse_or()
        parser.expect_end()
        return predicate


_PREDICATE_TOKEN_RE = re.compile(
    r"\s*(==|\(|\)|\[|\]|,|and\b|or\b|not\b|in\b"
    r"|dstPrefix\b|srcPrefix\b|ingress\b"
    r"|[0-9]+\.[0-9]+\.[0-9]+\.[0-9]+/[0-9]+|[0-9a-fA-F:]+/[0-9]+"
    r"|\"[^\"]*\"|'[^']*'|[A-Za-z_][A-Za-z_0-9\-.:]*)"
)


def _tokenize_predicate(text: str) -> list[str]:
    tokens: list[str] = []
    index = 0
    while index < len(text):
        match = _PREDICATE_TOKEN_RE.match(text, index)
        if match is None:
            if text[index:].strip():
                raise SpecSyntaxError(f"cannot tokenize predicate at {text[index:]!r}")
            break
        tokens.append(match.group(1))
        index = match.end()
    return tokens


class _PredicateParser:
    def __init__(self, tokens: list[str], text: str):
        self.tokens = tokens
        self.text = text
        self.pos = 0

    def _peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise SpecSyntaxError(f"unexpected end of predicate {self.text!r}")
        self.pos += 1
        return token

    def expect_end(self) -> None:
        if self._peek() is not None:
            raise SpecSyntaxError(f"trailing tokens in predicate {self.text!r}")

    def parse_or(self) -> PrefixPredicate:
        left = self.parse_and()
        while self._peek() == "or":
            self._advance()
            left = PredOr(left, self.parse_and())
        return left

    def parse_and(self) -> PrefixPredicate:
        left = self.parse_unary()
        while self._peek() == "and":
            self._advance()
            left = PredAnd(left, self.parse_unary())
        return left

    def parse_unary(self) -> PrefixPredicate:
        token = self._peek()
        if token == "not":
            self._advance()
            return PredNot(self.parse_unary())
        if token == "(":
            self._advance()
            inner = self.parse_or()
            if self._advance() != ")":
                raise SpecSyntaxError(f"expected ')' in predicate {self.text!r}")
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> PrefixPredicate:
        attr = self._advance()
        operator = self._advance()
        if attr == "ingress":
            if operator != "in":
                raise SpecSyntaxError("ingress predicates use 'ingress in [loc, ...]'")
            if self._advance() != "[":
                raise SpecSyntaxError("expected '[' after 'ingress in'")
            names: list[str] = []
            while True:
                token = self._advance()
                if token == "]":
                    break
                if token == ",":
                    continue
                names.append(token.strip("\"'"))
            return IngressIn(names)
        if operator != "==":
            raise SpecSyntaxError(f"unsupported predicate operator {operator!r}")
        prefix = self._advance().strip("\"'")
        if attr == "dstPrefix":
            return DstPrefixWithin(prefix)
        if attr == "srcPrefix":
            return SrcPrefixWithin(prefix)
        raise SpecSyntaxError(f"unknown predicate attribute {attr!r}")


def parse_program(
    text: str,
    db: LocationDB | None = None,
    *,
    granularity: Granularity = Granularity.ROUTER,
) -> ParsedProgram:
    """Parse a Rela program text (convenience wrapper)."""
    return RelaParser(db, granularity=granularity).parse_program(text)
