"""Builder helpers for Rela path (zone) expressions.

Zones and modifier arguments in Rela are regular expressions over network
locations (Section 4).  Internally they are
:class:`~repro.automata.regex.Regex` values; this module provides a small,
readable builder vocabulary so specifications written in Python look close to
the paper's examples::

    a1 = db.where(group="A1")
    d1 = db.where(group="D1")
    zone = seq(a1, any_hops(), d1)            # a1 .* d1
    old_path = seq(a1, b1, b2, b3, d1)        # a1 b1 b2 b3 d1
    new_path = seq(a1, a2, a3, d1)            # a1 a2 a3 d1

Strings are also accepted anywhere a sub-expression is expected and parsed
with the textual regex syntax (``"A1 (B1|B2) D1"``).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.automata.alphabet import DROP
from repro.automata.regex import (
    AnySym,
    Empty,
    Epsilon,
    Regex,
    Star,
    Sym,
    SymSet,
    concat_all,
    parse_regex,
    union_all,
)

#: Anything accepted where a path expression is expected.
PathLike = Regex | str


def as_regex(value: PathLike) -> Regex:
    """Coerce a string or Regex into a Regex."""
    if isinstance(value, Regex):
        return value
    return parse_regex(value)


def loc(name: str) -> Regex:
    """A single specific location."""
    return Sym(name)


def locs(names: Iterable[str]) -> Regex:
    """Any one location drawn from ``names`` (e.g. a router group)."""
    names = frozenset(names)
    if not names:
        return Empty()
    return SymSet(names)


def any_hop() -> Regex:
    """Exactly one hop at any location (the ``.`` wildcard)."""
    return AnySym()


def any_hops() -> Regex:
    """Zero or more hops at any locations (the ``.*`` wildcard)."""
    return Star(AnySym())


def epsilon() -> Regex:
    """The zero-length path."""
    return Epsilon()


def empty() -> Regex:
    """The empty path set."""
    return Empty()


def drop_hop() -> Regex:
    """The special ``drop`` location that models discarded packets."""
    return Sym(DROP)


def seq(*parts: PathLike) -> Regex:
    """Concatenation of path expressions (one hop after another)."""
    return concat_all([as_regex(part) for part in parts])


def alt(*parts: PathLike) -> Regex:
    """Union of path expressions."""
    return union_all([as_regex(part) for part in parts])


def star(part: PathLike) -> Regex:
    """Zero or more repetitions of a path expression."""
    return Star(as_regex(part))


def within(part: PathLike) -> Regex:
    """Arbitrary-length paths that never leave the given one-hop location set.

    ``within(a)`` is the paper's ``a*`` idiom used for "sub-paths inside
    region A, whatever they are".
    """
    return Star(as_regex(part))
