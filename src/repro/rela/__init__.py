"""The Rela surface language (paper Sections 4-5) and its RIR compiler.

Typical usage::

    from repro.rela import (
        LocationDB, Granularity, seq, any_hops, within,
        atomic, seq_spec, nochange, preserve, any_of,
        to_rir,
    )

    a1 = db.where(group="A1")
    d1 = db.where(group="D1")
    path_shift = atomic(seq(a1, any_hops(), d1), any_of(seq(a1, a2, a3, d1)))
    e2e = seq_spec(atomic(within(region_a), preserve()),
                   path_shift,
                   atomic(within(region_d), preserve()), name="e2e")
    change = e2e.else_(nochange())
    rir_spec = to_rir(change)
"""

from repro.rela.compile import (
    branch_rir,
    hash_expansions,
    post_relation,
    pre_relation,
    to_rir,
    zone,
)
from repro.rela.locations import Granularity, Location, LocationDB
from repro.rela.modifiers import (
    Add,
    Any,
    Drop,
    Modifier,
    Preserve,
    Remove,
    Replace,
    add,
    any_of,
    drop,
    preserve,
    remove,
    replace,
)
from repro.rela.parser import ParsedProgram, RelaParser, parse_program
from repro.rela.pathexpr import (
    alt,
    any_hop,
    any_hops,
    as_regex,
    drop_hop,
    empty,
    epsilon,
    loc,
    locs,
    seq,
    star,
    within,
)
from repro.rela.pspec import (
    DstPrefixWithin,
    IngressIn,
    PredAnd,
    PredNot,
    PredOr,
    PredTrue,
    PrefixPredicate,
    PSpec,
    SpecPolicy,
    SrcPrefixWithin,
)
from repro.rela.spec import (
    AtomicSpec,
    ElseSpec,
    RelaSpec,
    SeqSpec,
    atomic,
    else_chain,
    flatten_else,
    nochange,
    seq_spec,
)

__all__ = [
    # locations
    "Location",
    "LocationDB",
    "Granularity",
    # path expressions
    "loc",
    "locs",
    "seq",
    "alt",
    "star",
    "within",
    "any_hop",
    "any_hops",
    "epsilon",
    "empty",
    "drop_hop",
    "as_regex",
    # modifiers
    "Modifier",
    "Preserve",
    "Add",
    "Remove",
    "Replace",
    "Drop",
    "Any",
    "preserve",
    "add",
    "remove",
    "replace",
    "drop",
    "any_of",
    # specs
    "RelaSpec",
    "AtomicSpec",
    "SeqSpec",
    "ElseSpec",
    "atomic",
    "seq_spec",
    "else_chain",
    "nochange",
    "flatten_else",
    # pspecs
    "PrefixPredicate",
    "PredTrue",
    "DstPrefixWithin",
    "SrcPrefixWithin",
    "IngressIn",
    "PredAnd",
    "PredOr",
    "PredNot",
    "PSpec",
    "SpecPolicy",
    # compilation
    "to_rir",
    "pre_relation",
    "post_relation",
    "zone",
    "branch_rir",
    "hash_expansions",
    # parser
    "RelaParser",
    "ParsedProgram",
    "parse_program",
]
