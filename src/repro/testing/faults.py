"""Deterministic fault injection for the verification runtime.

The resilience layer (:mod:`repro.verifier.runtime`) survives worker
crashes, hung checks and transient errors — claims that are only testable
if those failures can be produced *on demand and reproducibly*.  A
:class:`FaultPlan` is a picklable schedule of failures keyed by flow
equivalence class and attempt number, installed through
``VerificationOptions.fault_plan`` and applied by the runtime at the
``_check_one_fec`` seam (worker-side and serial alike):

* ``error`` — raise :class:`InjectedFault` (a transient check exception);
* ``crash`` — kill the hosting worker process with ``os._exit`` (the
  parent observes ``BrokenProcessPool``); on the serial path, where a real
  exit would take the whole interpreter down, raise
  :class:`~repro.errors.WorkerCrashError` instead so the schedule stays
  runnable on every execution path;
* ``hang`` — sleep past the per-check deadline so the SIGALRM guard fires
  (only meaningful with ``check_timeout`` set — an unguarded hang really
  does sleep for ``delay`` seconds).

Every fault carries an ``attempts`` bound: the fault fires while the
check's *total* attempt number (prior pool-crash exposure + in-process
retries) is ``<= attempts``, then stops.  ``attempts=1`` models a
transient failure that a single retry (or pool rebuild) clears;
``attempts=POISON`` models a poison check that no retry budget survives.

Plans are pure data — deterministic given their fields — so a faulted run
is exactly reproducible, which is what the differential suite in
``tests/verifier/test_fault_tolerance.py`` relies on: any fault schedule
must yield either the byte-identical clean report or a report whose only
difference is honestly-flagged ``unknown`` entries.
"""

from __future__ import annotations

import os
import random
import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import WorkerCrashError

#: ``attempts`` value modelling a poison check: no realistic retry budget
#: outlasts it, so the runtime must give up and record an unknown verdict.
POISON = 1_000_000


class InjectedFault(RuntimeError):
    """The exception raised by ``error`` faults.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the runtime
    must absorb arbitrary check exceptions, not just the library's own.
    """


@dataclass(frozen=True, slots=True)
class Fault:
    """One fault rule: what fails, for which check, for how many attempts."""

    #: ``"error"`` | ``"crash"`` | ``"hang"``.
    kind: str
    #: Flow equivalence class the rule applies to; ``None`` matches every check.
    fec_id: str | None = None
    #: The fault fires while the check's total attempt number is <= this.
    attempts: int = 1
    #: Seconds a ``hang`` sleeps (pick well past ``check_timeout``).
    delay: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in ("error", "crash", "hang"):
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A deterministic, picklable schedule of injected failures."""

    faults: tuple[Fault, ...] = ()

    def fault_for(self, fec_id: str, attempt: int) -> Fault | None:
        """The first rule matching ``(fec_id, attempt)``, if any."""
        for fault in self.faults:
            if fault.fec_id is not None and fault.fec_id != fec_id:
                continue
            if attempt <= fault.attempts:
                return fault
        return None

    def apply(self, fec_id: str, attempt: int, *, in_worker: bool) -> None:
        """Fire the matching fault, if any (called at the check seam)."""
        fault = self.fault_for(fec_id, attempt)
        if fault is None:
            return
        if fault.kind == "error":
            raise InjectedFault(
                f"injected check error for {fec_id} (attempt {attempt})"
            )
        if fault.kind == "crash":
            if in_worker:
                # A hard worker death: no exception propagates, no result is
                # returned, the parent sees BrokenProcessPool.
                os._exit(17)
            raise WorkerCrashError(
                f"injected worker crash for {fec_id} (attempt {attempt})"
            )
        # "hang": sleep past the deadline; the runtime's SIGALRM guard is
        # expected to interrupt this with CheckTimeoutError.
        time.sleep(fault.delay)


def seeded_fault_plan(
    seed: int,
    fec_ids: Sequence[str],
    *,
    error_rate: float = 0.1,
    crash_rate: float = 0.05,
    hang_rate: float = 0.0,
    poison_rate: float = 0.0,
    max_transient_attempts: int = 2,
    hang_delay: float = 30.0,
) -> FaultPlan:
    """A reproducible random fault schedule over ``fec_ids``.

    Each class independently draws at most one fault: an ``error``/
    ``crash``/``hang`` that clears after 1..``max_transient_attempts``
    attempts, or (with ``poison_rate``) a poison variant that never
    clears.  The same ``(seed, fec_ids, rates)`` always yields the same
    plan, so stress sweeps (``STRESS_FAULT_SEEDS``) are reproducible from
    their seed alone.
    """
    rng = random.Random(seed)
    faults: list[Fault] = []
    for fec_id in sorted(fec_ids):
        draw = rng.random()
        kind: str | None = None
        if draw < error_rate:
            kind = "error"
        elif draw < error_rate + crash_rate:
            kind = "crash"
        elif draw < error_rate + crash_rate + hang_rate:
            kind = "hang"
        if kind is None:
            continue
        if rng.random() < poison_rate:
            attempts = POISON
        else:
            attempts = rng.randint(1, max(1, max_transient_attempts))
        faults.append(Fault(kind=kind, fec_id=fec_id, attempts=attempts, delay=hang_delay))
    return FaultPlan(faults=tuple(faults))
