"""Deterministic test harnesses for the repro package.

Currently home to the fault-injection plans (:mod:`repro.testing.faults`)
the resilience runtime's differential tests are driven by.  Nothing in
``src/repro`` outside the verifier's injection seams depends on this
package, and nothing here depends on the verifier — plans are plain data.
"""

from repro.testing.faults import Fault, FaultPlan, InjectedFault, seeded_fault_plan

__all__ = ["Fault", "FaultPlan", "InjectedFault", "seeded_fault_plan"]
