"""The manual-inspection baseline: per-FEC path diffing (paper Section 2.3).

Before Rela, engineers validated changes by computing the forwarding paths of
every flow in both snapshots, aggregating flows into equivalence classes and
*manually* reading through the "path diff" — the list of classes whose paths
differ.  This module reproduces that tool so that:

* the workloads can report path-diff sizes (the paper quotes diffs ranging
  from tens of classes to more than 10,000);
* the Figure 1 case study can contrast the manual workload (17 then 46 diff
  entries) with Rela's targeted violation reports;
* the baseline benchmarks can measure what the diff-only approach costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.snapshot import Snapshot

Path = tuple[str, ...]


@dataclass(slots=True)
class DiffEntry:
    """One flow equivalence class whose paths changed."""

    fec: FlowEquivalenceClass
    pre_paths: set[Path]
    post_paths: set[Path]

    @property
    def added_paths(self) -> set[Path]:
        """Paths present only after the change."""
        return self.post_paths - self.pre_paths

    @property
    def removed_paths(self) -> set[Path]:
        """Paths present only before the change."""
        return self.pre_paths - self.post_paths

    def __str__(self) -> str:
        removed = ", ".join("-".join(p) for p in sorted(self.removed_paths)) or "(none)"
        added = ", ".join("-".join(p) for p in sorted(self.added_paths)) or "(none)"
        return f"{self.fec}: removed [{removed}] added [{added}]"


@dataclass(slots=True)
class PathDiff:
    """The full path diff between two snapshots."""

    entries: list[DiffEntry] = field(default_factory=list)
    #: FECs inspected in total (changed or not); the denominator for audits.
    total_classes: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def changed_fec_ids(self) -> set[str]:
        """Identifiers of all classes whose paths changed."""
        return {entry.fec.fec_id for entry in self.entries}

    def summary(self) -> str:
        """A one-line summary like the audit dashboards engineers read."""
        return (
            f"{len(self.entries)} of {self.total_classes} flow equivalence classes "
            f"changed paths"
        )


def path_diff(
    pre: Snapshot,
    post: Snapshot,
    *,
    max_paths: int = 10_000,
    max_length: int = 64,
) -> PathDiff:
    """Compute the path diff between two snapshots.

    Classes appearing in only one snapshot are treated as having an empty
    path set in the other, which is how new or decommissioned prefixes show
    up in the diff.
    """
    diff = PathDiff()
    fec_ids = list(dict.fromkeys(pre.fec_ids() + post.fec_ids()))
    diff.total_classes = len(fec_ids)
    for fec_id in fec_ids:
        fec = pre.fec(fec_id) if fec_id in pre else post.fec(fec_id)
        pre_paths = pre.graph(fec_id).path_set(max_paths=max_paths, max_length=max_length)
        post_paths = post.graph(fec_id).path_set(max_paths=max_paths, max_length=max_length)
        if pre_paths != post_paths:
            diff.entries.append(DiffEntry(fec=fec, pre_paths=pre_paths, post_paths=post_paths))
    return diff
