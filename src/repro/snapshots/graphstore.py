"""Structural sharing of forwarding graphs: the interning store.

A backbone change produces on the order of 10^5-10^6 flow equivalence
classes, but only a *tiny* number of distinct forwarding behaviours: most
classes are untouched by any given change, and the touched ones move in
groups (every class entering at the same router towards the same region
follows the same DAG).  Paying per FEC — one Python graph object, one
blake2b fingerprint, one worker pickle per class — is what caps setup
throughput, not the automata work.

:class:`GraphStore` makes sharing structural instead of coincidental:
graphs are *interned* by their canonical fingerprint, the first graph with
a given fingerprint is frozen and becomes the canonical object, and every
later duplicate resolves to the same small integer *ref*.  Snapshots store
``fec_id → ref`` (see :class:`~repro.snapshots.snapshot.Snapshot`), so

* ``Snapshot.copy()`` is a pair of dict copies (copy-on-write) instead of a
  JSON round-trip;
* the verifier groups FECs by ``(spec, pre ref, post ref)`` with integer
  comparisons — no per-FEC re-hashing;
* worker processes receive each distinct graph exactly once, in an
  id-indexed table, while work batches carry only ids.

Interning freezes the graph in place (see
:meth:`~repro.snapshots.forwarding_graph.ForwardingGraph.freeze`):
*mutate-then-intern is an error*, enforced by the frozen graph itself.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import SnapshotError
from repro.snapshots.forwarding_graph import ForwardingGraph


class GraphStore:
    """An append-only interning table of frozen forwarding graphs.

    Refs are dense non-negative integers, assigned in first-intern order,
    and are only meaningful relative to the store that issued them.  Stores
    are picklable (they are plain containers of frozen graphs), but the
    verifier never ships a whole store to workers — it builds a per-run
    table of just the graphs a change actually touches.
    """

    __slots__ = ("_graphs", "_ref_by_fingerprint")

    def __init__(self) -> None:
        self._graphs: list[ForwardingGraph] = []
        self._ref_by_fingerprint: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern(self, graph: ForwardingGraph) -> int:
        """Intern ``graph`` and return its ref.

        The first graph with a given fingerprint is frozen in place and
        becomes the canonical object; later structurally-identical graphs
        resolve to the same ref and are discarded.  The fingerprint already
        covers the granularity, so graphs at different granularities never
        collide.
        """
        fingerprint = graph.fingerprint()  # O(1) when already frozen
        ref = self._ref_by_fingerprint.get(fingerprint)
        if ref is None:
            graph.freeze()
            ref = len(self._graphs)
            self._graphs.append(graph)
            self._ref_by_fingerprint[fingerprint] = ref
        return ref

    def ref_of(self, graph: ForwardingGraph) -> int | None:
        """The ref of ``graph`` if an identical graph is interned, else None."""
        return self._ref_by_fingerprint.get(graph.fingerprint())

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def graph(self, ref: int) -> ForwardingGraph:
        """The canonical (frozen) graph for ``ref``."""
        try:
            return self._graphs[ref]
        except IndexError:
            raise SnapshotError(f"unknown graph ref {ref!r} (store holds {len(self)})") from None

    def __len__(self) -> int:
        """Number of distinct graphs interned."""
        return len(self._graphs)

    def __iter__(self) -> Iterator[ForwardingGraph]:
        return iter(self._graphs)

    def __getstate__(self):
        return (self._graphs, self._ref_by_fingerprint)

    def __setstate__(self, state) -> None:
        self._graphs, self._ref_by_fingerprint = state
