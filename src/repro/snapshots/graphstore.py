"""Structural sharing of forwarding graphs: the interning store.

A backbone change produces on the order of 10^5-10^6 flow equivalence
classes, but only a *tiny* number of distinct forwarding behaviours: most
classes are untouched by any given change, and the touched ones move in
groups (every class entering at the same router towards the same region
follows the same DAG).  Paying per FEC — one Python graph object, one
blake2b fingerprint, one worker pickle per class — is what caps setup
throughput, not the automata work.

:class:`GraphStore` makes sharing structural instead of coincidental:
graphs are *interned* by their canonical fingerprint, the first graph with
a given fingerprint is frozen and becomes the canonical object, and every
later duplicate resolves to the same small integer *ref*.  Snapshots store
``fec_id → ref`` (see :class:`~repro.snapshots.snapshot.Snapshot`), so

* ``Snapshot.copy()`` is a pair of dict copies (copy-on-write) instead of a
  JSON round-trip;
* the verifier groups FECs by ``(spec, pre ref, post ref)`` with integer
  comparisons — no per-FEC re-hashing;
* worker processes receive each distinct graph exactly once, in an
  id-indexed table, while work batches carry only ids.

Interning freezes the graph in place (see
:meth:`~repro.snapshots.forwarding_graph.ForwardingGraph.freeze`):
*mutate-then-intern is an error*, enforced by the frozen graph itself.

Long-lived owners — the cross-epoch store of a
:class:`~repro.verifier.session.VerificationSession` — additionally use the
*ref-counting* API (:meth:`GraphStore.acquire` / :meth:`GraphStore.release`
/ :meth:`GraphStore.evict_unreferenced`) to bound memory over unbounded
change streams: graphs pinned by the current epoch keep a positive count,
everything else can be evicted and its slot reused by a later intern.
Plain per-snapshot stores never evict; the ref-counting API is opt-in and
inert unless an owner calls it.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import SnapshotError
from repro.snapshots.forwarding_graph import ForwardingGraph


class GraphStore:
    """An interning table of frozen forwarding graphs.

    Refs are dense non-negative integers, assigned in first-intern order,
    and are only meaningful relative to the store that issued them.  Stores
    are picklable (they are plain containers of frozen graphs), but the
    verifier never ships a whole store to workers — it builds a per-run
    table of just the graphs a change actually touches.

    The store is append-only unless the owner explicitly evicts: after
    :meth:`evict_unreferenced`, evicted slots are recycled by later interns,
    so a ref is stable exactly as long as the graph it names stays interned.
    Owners that cache by ref (the verification session's verdict cache) must
    drop entries naming evicted refs — :meth:`evict_unreferenced` returns
    the evicted refs for precisely that purpose.
    """

    __slots__ = ("_graphs", "_ref_by_fingerprint", "_refcounts", "_free")

    def __init__(self) -> None:
        self._graphs: list[ForwardingGraph | None] = []
        self._ref_by_fingerprint: dict[str, int] = {}
        self._refcounts: dict[int, int] = {}
        self._free: list[int] = []

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern(self, graph: ForwardingGraph) -> int:
        """Intern ``graph`` and return its ref.

        The first graph with a given fingerprint is frozen in place and
        becomes the canonical object; later structurally-identical graphs
        resolve to the same ref and are discarded.  The fingerprint already
        covers the granularity, so graphs at different granularities never
        collide.
        """
        fingerprint = graph.fingerprint()  # O(1) when already frozen
        ref = self._ref_by_fingerprint.get(fingerprint)
        if ref is None:
            graph.freeze()
            if self._free:
                ref = self._free.pop()
                self._graphs[ref] = graph
            else:
                ref = len(self._graphs)
                self._graphs.append(graph)
            self._ref_by_fingerprint[fingerprint] = ref
        return ref

    def ref_of(self, graph: ForwardingGraph) -> int | None:
        """The ref of ``graph`` if an identical graph is interned, else None."""
        return self._ref_by_fingerprint.get(graph.fingerprint())

    # ------------------------------------------------------------------
    # Ref counting and eviction (opt-in, used by long-lived session stores)
    # ------------------------------------------------------------------
    def acquire(self, ref: int) -> None:
        """Pin ``ref``: it survives :meth:`evict_unreferenced` while pinned."""
        self.graph(ref)  # validate
        self._refcounts[ref] = self._refcounts.get(ref, 0) + 1

    def release(self, ref: int) -> None:
        """Drop one pin of ``ref`` (it stays interned until evicted)."""
        count = self._refcounts.get(ref, 0)
        if count <= 0:
            raise SnapshotError(f"release of graph ref {ref!r} without a matching acquire")
        if count == 1:
            del self._refcounts[ref]
        else:
            self._refcounts[ref] = count - 1

    def refcount(self, ref: int) -> int:
        """Current pin count of ``ref`` (0 for unpinned live refs)."""
        self.graph(ref)  # validate
        return self._refcounts.get(ref, 0)

    def evict_unreferenced(self) -> list[int]:
        """Evict every graph with refcount 0 and return the evicted refs.

        Evicted slots are recycled by later :meth:`intern` calls, so callers
        holding per-ref caches must invalidate entries naming the returned
        refs before interning anything new.  Re-interning an evicted graph
        later simply assigns it a (possibly recycled) fresh ref.
        """
        evicted: list[int] = []
        for ref, graph in enumerate(self._graphs):
            if graph is None or self._refcounts.get(ref, 0) > 0:
                continue
            del self._ref_by_fingerprint[graph.fingerprint()]
            self._graphs[ref] = None
            self._free.append(ref)
            evicted.append(ref)
        return evicted

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def graph(self, ref: int) -> ForwardingGraph:
        """The canonical (frozen) graph for ``ref``."""
        # Refs are non-negative slot indices; a negative int must not be let
        # through to Python's end-relative list indexing.
        if not isinstance(ref, int) or ref < 0:
            raise SnapshotError(f"unknown graph ref {ref!r} (store holds {len(self)})")
        try:
            graph = self._graphs[ref]
        except IndexError:
            raise SnapshotError(f"unknown graph ref {ref!r} (store holds {len(self)})") from None
        if graph is None:
            raise SnapshotError(f"graph ref {ref!r} was evicted from the store")
        return graph

    def __len__(self) -> int:
        """Number of distinct graphs currently interned."""
        return len(self._ref_by_fingerprint)

    def __iter__(self) -> Iterator[ForwardingGraph]:
        return (graph for graph in self._graphs if graph is not None)

    def items(self) -> Iterator[tuple[int, ForwardingGraph]]:
        """``(ref, graph)`` pairs for every live slot, in ref order."""
        return (
            (ref, graph) for ref, graph in enumerate(self._graphs) if graph is not None
        )

    def __getstate__(self):
        return (self._graphs, self._ref_by_fingerprint, self._refcounts, self._free)

    def __setstate__(self, state) -> None:
        if len(state) == 2:  # pickles from before eviction support
            self._graphs, self._ref_by_fingerprint = state
            self._refcounts, self._free = {}, []
        else:
            self._graphs, self._ref_by_fingerprint, self._refcounts, self._free = state
