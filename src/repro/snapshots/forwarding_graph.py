"""Forwarding graphs: the compact path-set exchange format (paper Section 6.1).

A single flow equivalence class can have an enormous number of ECMP paths —
the paper reports a flow with 10^8 interface-level paths.  Enumerating those
paths is infeasible, so Rela defines a graph format: each vertex is a
forwarding hop for the traffic, each directed edge a link used to forward it,
plus metadata identifying source and sink vertices.  The whole path set is
then the set of source→sink walks of the DAG.

:class:`ForwardingGraph` implements that format, including:

* path enumeration (bounded, for small graphs, diffing and display);
* exact path counting without enumeration (to demonstrate the compaction);
* conversion to an FSA (vertices/edges become states/transitions, an initial
  state feeds the sources, sinks accept);
* granularity coarsening by merging vertices that map to the same coarser
  entity (interface → router → router group).
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.automata.alphabet import DROP, Alphabet
from repro.automata.fsa import FSA
from repro.errors import SnapshotError
from repro.rela.locations import Granularity

Path = tuple[str, ...]


@dataclass(slots=True)
class ForwardingGraph:
    """The forwarding behaviour of one traffic class in one snapshot.

    Attributes
    ----------
    granularity:
        The granularity of the node names (normally ``INTERFACE`` or
        ``ROUTER`` as produced by the simulator).
    nodes:
        All forwarding hops.
    edges:
        Directed links between hops (``(from, to)`` pairs).
    sources / sinks:
        Entry and exit hops of the traffic; every forwarding path starts at a
        source and ends at a sink.  The special :data:`~repro.automata.alphabet.DROP`
        node may appear as a sink to model discarded traffic.
    """

    granularity: Granularity = Granularity.ROUTER
    nodes: set[str] = field(default_factory=set)
    edges: set[tuple[str, str]] = field(default_factory=set)
    sources: set[str] = field(default_factory=set)
    sinks: set[str] = field(default_factory=set)
    #: Cached :meth:`fingerprint` with the content token it was computed at;
    #: invalidated by the mutator methods and revalidated against the token
    #: so direct set mutation (``graph.sources.add(...)``) is caught.
    _fingerprint: (
        tuple[tuple[frozenset, frozenset, frozenset, frozenset], str] | None
    ) = field(default=None, repr=False, compare=False)

    def __getstate__(self):
        # The fingerprint cache (with its frozenset token copies) is local
        # derived state; dropping it keeps worker-batch pickles lean.
        return (self.granularity, self.nodes, self.edges, self.sources, self.sinks)

    def __setstate__(self, state) -> None:
        self.granularity, self.nodes, self.edges, self.sources, self.sinks = state
        self._fingerprint = None

    def _content_token(self) -> tuple[frozenset, frozenset, frozenset, frozenset]:
        """Frozen copies of the component sets for exact cache revalidation.

        Far cheaper than the canonical digest (no sorting or encoding) yet
        exact under any content change, including same-size swaps via
        direct set mutation that the mutator methods never see.
        """
        return (
            frozenset(self.nodes),
            frozenset(self.edges),
            frozenset(self.sources),
            frozenset(self.sinks),
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> None:
        """Add a forwarding hop."""
        self.nodes.add(name)
        self._fingerprint = None

    def add_edge(self, src: str, dst: str) -> None:
        """Add a directed forwarding link, creating its endpoints as needed."""
        self.nodes.add(src)
        self.nodes.add(dst)
        self.edges.add((src, dst))
        self._fingerprint = None

    def add_path(self, path: Sequence[str]) -> None:
        """Add an explicit path (its first hop becomes a source, last a sink)."""
        if not path:
            raise SnapshotError("cannot add an empty forwarding path")
        for name in path:
            self.nodes.add(name)
        for src, dst in zip(path, path[1:]):
            self.edges.add((src, dst))
        self.sources.add(path[0])
        self.sinks.add(path[-1])
        self._fingerprint = None

    @classmethod
    def from_paths(
        cls, paths: Iterable[Sequence[str]], *, granularity: Granularity = Granularity.ROUTER
    ) -> ForwardingGraph:
        """Build a graph that contains (at least) the given paths.

        Note that, as in the paper's format, the graph is a *compact*
        encoding: if two paths share hops, their interleavings are also
        encoded.  Use one graph per traffic class, which is how the
        simulator emits them.
        """
        graph = cls(granularity=granularity)
        for path in paths:
            graph.add_path(path)
        return graph

    @classmethod
    def empty(cls, *, granularity: Granularity = Granularity.ROUTER) -> ForwardingGraph:
        """A graph with no traffic at all (used when a FEC disappears)."""
        return cls(granularity=granularity)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def successors(self, node: str) -> list[str]:
        """Forwarding next-hops of ``node``."""
        return [dst for (src, dst) in self.edges if src == node]

    def is_empty(self) -> bool:
        """True when the graph encodes no paths."""
        return not self.sources or not self.sinks

    def is_acyclic(self) -> bool:
        """True when the graph has no directed cycle (forwarding loops)."""
        adjacency: dict[str, list[str]] = {node: [] for node in self.nodes}
        indegree: dict[str, int] = {node: 0 for node in self.nodes}
        for src, dst in self.edges:
            adjacency[src].append(dst)
            indegree[dst] += 1
        queue = deque(node for node, degree in indegree.items() if degree == 0)
        visited = 0
        while queue:
            node = queue.popleft()
            visited += 1
            for nxt in adjacency[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    queue.append(nxt)
        return visited == len(self.nodes)

    def count_paths(self) -> int:
        """Exact number of source→sink paths (requires an acyclic graph).

        This is the quantity the paper uses to illustrate the compaction: a
        38-vertex DAG can encode 10^8 interface-level ECMP paths.
        """
        if not self.is_acyclic():
            raise SnapshotError("cannot count paths of a cyclic forwarding graph")
        adjacency: dict[str, list[str]] = {node: [] for node in self.nodes}
        for src, dst in self.edges:
            adjacency[src].append(dst)

        memo: dict[str, int] = {}

        def count_from(node: str) -> int:
            if node in memo:
                return memo[node]
            total = 1 if node in self.sinks else 0
            for nxt in adjacency[node]:
                total += count_from(nxt)
            memo[node] = total
            return total

        return sum(count_from(source) for source in self.sources)

    def paths(self, *, max_paths: int = 10_000, max_length: int = 64) -> Iterator[Path]:
        """Enumerate source→sink paths (bounded; breadth-first by length)."""
        adjacency: dict[str, list[str]] = {node: [] for node in self.nodes}
        for src, dst in self.edges:
            adjacency[src].append(dst)
        produced = 0
        queue: deque[tuple[str, Path]] = deque(
            (source, (source,)) for source in sorted(self.sources)
        )
        while queue and produced < max_paths:
            node, path = queue.popleft()
            if node in self.sinks:
                yield path
                produced += 1
                if produced >= max_paths:
                    return
            if len(path) >= max_length:
                continue
            for nxt in sorted(adjacency[node]):
                queue.append((nxt, path + (nxt,)))

    def path_set(self, *, max_paths: int = 10_000, max_length: int = 64) -> set[Path]:
        """The (bounded) set of forwarding paths."""
        return set(self.paths(max_paths=max_paths, max_length=max_length))

    def locations(self) -> set[str]:
        """All hop names used by this graph."""
        return set(self.nodes)

    def fingerprint(self) -> str:
        """A cheap canonical fingerprint of the forwarding behaviour.

        Two graphs with the same fingerprint encode the same path set at the
        same granularity, so a verification verdict computed for one applies
        to the other.  The digest is order-independent (all components are
        sorted) and stable across processes, which lets the verifier memoize
        per-FEC checks across the thousands of identical or unchanged graphs
        a backbone change produces.

        The digest is cached; the mutator methods (:meth:`add_node`,
        :meth:`add_edge`, :meth:`add_path`) invalidate it, and the cache is
        additionally revalidated against order-independent content hashes of
        the component sets, so direct set mutation after a fingerprint
        (``graph.sources.add(...)``, same-size edge swaps, ...) also forces
        a recompute instead of returning a stale digest.
        """
        token = self._content_token()
        if self._fingerprint is not None and self._fingerprint[0] == token:
            return self._fingerprint[1]
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.granularity.value.encode())
        for section in (
            sorted(self.nodes),
            [f"{src}\x01{dst}" for src, dst in sorted(self.edges)],
            sorted(self.sources),
            sorted(self.sinks),
        ):
            digest.update(b"\x00\x00")
            for item in section:
                digest.update(item.encode())
                digest.update(b"\x00")
        hexdigest = digest.hexdigest()
        self._fingerprint = (token, hexdigest)
        return hexdigest

    # ------------------------------------------------------------------
    # Granularity conversion
    # ------------------------------------------------------------------
    def coarsen(self, mapping: Mapping[str, str], granularity: Granularity) -> ForwardingGraph:
        """Merge vertices that map to the same coarser-granularity entity.

        ``mapping`` maps node names at this graph's granularity to names at
        the target granularity (e.g. interface → router).  Names missing from
        the mapping are kept unchanged, which conveniently handles the
        special ``drop`` node and external locations.  Self-loops created by
        merging consecutive same-entity hops are elided, matching the paper's
        definition of coarser-granularity paths.
        """

        def translate(name: str) -> str:
            return mapping.get(name, name)

        coarse = ForwardingGraph(granularity=granularity)
        for node in self.nodes:
            coarse.add_node(translate(node))
        for src, dst in self.edges:
            new_src, new_dst = translate(src), translate(dst)
            if new_src != new_dst:
                coarse.add_edge(new_src, new_dst)
        coarse.sources = {translate(node) for node in self.sources}
        coarse.sinks = {translate(node) for node in self.sinks}
        return coarse

    # ------------------------------------------------------------------
    # FSA construction (paper Section 6.1)
    # ------------------------------------------------------------------
    def to_fsa(self, alphabet: Alphabet) -> FSA:
        """Convert the graph to an FSA accepting exactly its path set.

        Vertices become states and edges transitions; an extra initial state
        consumes the first hop of every source, and sink states accept.
        Symbols are registered with ``alphabet`` on the fly.
        """
        fsa = FSA(alphabet)
        state_of: dict[str, int] = {}
        for node in sorted(self.nodes):
            state_of[node] = fsa.add_state()
        for source in self.sources:
            fsa.add_transition(fsa.initial, alphabet.intern(source), state_of[source])
        for src, dst in self.edges:
            fsa.add_transition(state_of[src], alphabet.intern(dst), state_of[dst])
        for sink in self.sinks:
            fsa.mark_accepting(state_of[sink])
        return fsa

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable representation (the on-disk exchange format)."""
        return {
            "granularity": self.granularity.value,
            "nodes": sorted(self.nodes),
            "edges": sorted(list(edge) for edge in self.edges),
            "sources": sorted(self.sources),
            "sinks": sorted(self.sinks),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> ForwardingGraph:
        """Rebuild a graph from :meth:`to_dict` output."""
        try:
            graph = cls(granularity=Granularity(data["granularity"]))
            graph.nodes = set(data["nodes"])
            graph.edges = {(src, dst) for src, dst in data["edges"]}
            graph.sources = set(data["sources"])
            graph.sinks = set(data["sinks"])
        except (KeyError, ValueError) as exc:
            raise SnapshotError(f"malformed forwarding graph record: {exc}") from exc
        unknown = (graph.sources | graph.sinks) - graph.nodes
        if unknown:
            raise SnapshotError(f"sources/sinks reference unknown nodes: {sorted(unknown)}")
        return graph


def drop_graph(*, granularity: Granularity = Granularity.ROUTER) -> ForwardingGraph:
    """A forwarding graph for traffic that the network discards.

    Following the paper's convention (Section 5.1), dropped traffic is
    modelled as the special single-location path ``drop``, so the graph has
    one node that is both source and sink.
    """
    graph = ForwardingGraph(granularity=granularity)
    graph.add_path([DROP])
    return graph
