"""Forwarding graphs: the compact path-set exchange format (paper Section 6.1).

A single flow equivalence class can have an enormous number of ECMP paths —
the paper reports a flow with 10^8 interface-level paths.  Enumerating those
paths is infeasible, so Rela defines a graph format: each vertex is a
forwarding hop for the traffic, each directed edge a link used to forward it,
plus metadata identifying source and sink vertices.  The whole path set is
then the set of source→sink walks of the DAG.

:class:`ForwardingGraph` implements that format, including:

* path enumeration (bounded, for small graphs, diffing and display);
* exact path counting without enumeration (to demonstrate the compaction);
* conversion to an FSA (vertices/edges become states/transitions, an initial
  state feeds the sources, sinks accept);
* granularity coarsening by merging vertices that map to the same coarser
  entity (interface → router → router group);
* freezing (:meth:`ForwardingGraph.freeze`): a frozen graph is immutable, its
  fingerprint and adjacency index are computed once and revalidated in O(1),
  and it can be safely shared between snapshots, worker processes and the
  :class:`~repro.snapshots.graphstore.GraphStore` interning table.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Mapping, Sequence
from collections.abc import Set as AbstractSet

from repro.automata.alphabet import DROP, Alphabet
from repro.automata.fsa import FSA
from repro.errors import SnapshotError
from repro.rela.locations import Granularity

Path = tuple[str, ...]

#: Content fields protected against assignment once a graph is frozen.
_CONTENT_FIELDS = frozenset({"granularity", "nodes", "edges", "sources", "sinks"})


@dataclass(slots=True)
class ForwardingGraph:
    """The forwarding behaviour of one traffic class in one snapshot.

    Attributes
    ----------
    granularity:
        The granularity of the node names (normally ``INTERFACE`` or
        ``ROUTER`` as produced by the simulator).
    nodes:
        All forwarding hops.
    edges:
        Directed links between hops (``(from, to)`` pairs).
    sources / sinks:
        Entry and exit hops of the traffic; every forwarding path starts at a
        source and ends at a sink.  The special :data:`~repro.automata.alphabet.DROP`
        node may appear as a sink to model discarded traffic.
    """

    granularity: Granularity = Granularity.ROUTER
    nodes: AbstractSet[str] = field(default_factory=set)
    edges: AbstractSet[tuple[str, str]] = field(default_factory=set)
    sources: AbstractSet[str] = field(default_factory=set)
    sinks: AbstractSet[str] = field(default_factory=set)
    #: Cached :meth:`fingerprint` with the content token it was computed at;
    #: invalidated by the mutator methods and revalidated against the token
    #: so direct set mutation (``graph.sources.add(...)``) is caught.  Frozen
    #: graphs store ``None`` as the token: their content cannot change, so
    #: the cache is returned without any revalidation work.
    _fingerprint: (
        tuple[tuple[frozenset, frozenset, frozenset, frozenset] | None, str] | None
    ) = field(default=None, repr=False, compare=False)
    #: Whether the graph is frozen (immutable, interned or internable).
    _frozen: bool = field(default=False, repr=False, compare=False)
    #: Cached successor index, built on first use for frozen graphs only
    #: (an unfrozen graph can be mutated behind the cache's back).
    _adjacency: dict[str, list[str]] | None = field(default=None, repr=False, compare=False)

    def __setattr__(self, name: str, value) -> None:
        # Enforce the freeze contract at the attribute level: once frozen, the
        # content fields can be neither mutated (they are frozensets) nor
        # reassigned.  Derived caches stay writable.
        if name in _CONTENT_FIELDS:
            try:
                frozen = self._frozen
            except AttributeError:  # still inside __init__ / __setstate__
                frozen = False
            if frozen:
                raise SnapshotError(
                    f"cannot assign {name!r} on a frozen forwarding graph; thaw() a copy first"
                )
        object.__setattr__(self, name, value)

    def __getstate__(self):
        # The fingerprint token and adjacency cache are local derived state;
        # dropping them keeps worker-batch pickles lean.  The digest itself
        # travels with frozen graphs so the receiving process keeps the O(1)
        # fingerprint path without re-hashing.
        digest = self._fingerprint[1] if self._frozen and self._fingerprint else None
        return (
            self.granularity,
            self.nodes,
            self.edges,
            self.sources,
            self.sinks,
            self._frozen,
            digest,
        )

    def __setstate__(self, state) -> None:
        if len(state) == 5:  # pickles from before freeze support
            self.granularity, self.nodes, self.edges, self.sources, self.sinks = state
            frozen, digest = False, None
        else:
            self.granularity, self.nodes, self.edges, self.sources, self.sinks, frozen, digest = (
                state
            )
        object.__setattr__(self, "_fingerprint", (None, digest) if digest else None)
        object.__setattr__(self, "_frozen", frozen)
        object.__setattr__(self, "_adjacency", None)

    def _content_token(self) -> tuple[frozenset, frozenset, frozenset, frozenset]:
        """Frozen copies of the component sets for exact cache revalidation.

        Far cheaper than the canonical digest (no sorting or encoding) yet
        exact under any content change, including same-size swaps via
        direct set mutation that the mutator methods never see.
        """
        return (
            frozenset(self.nodes),
            frozenset(self.edges),
            frozenset(self.sources),
            frozenset(self.sinks),
        )

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether this graph is immutable (safe to share and intern)."""
        return self._frozen

    def freeze(self) -> ForwardingGraph:
        """Make this graph immutable, in place, and return it.

        The component sets become frozensets (so both the mutator methods and
        direct set mutation fail loudly), and the fingerprint and adjacency
        caches become permanent: revalidation is O(1) instead of rebuilding
        content tokens.  Freezing is idempotent; it is performed automatically
        when a graph is interned into a
        :class:`~repro.snapshots.graphstore.GraphStore` (which is how
        snapshots store graphs), so *mutate-then-intern is an error* — build
        the graph fully, then hand it over.  Use :meth:`thaw` to obtain a
        mutable copy.
        """
        if self._frozen:
            return self
        if self._fingerprint is not None:
            # The cached digest may be stale (direct set mutation after a
            # fingerprint() call never notifies the cache — that is exactly
            # what token revalidation exists for), so revalidate it one last
            # time before it becomes the permanent frozen cache.
            if self._fingerprint[0] == self._content_token():
                object.__setattr__(self, "_fingerprint", (None, self._fingerprint[1]))
            else:
                object.__setattr__(self, "_fingerprint", None)
        self.nodes = frozenset(self.nodes)
        self.edges = frozenset(self.edges)
        self.sources = frozenset(self.sources)
        self.sinks = frozenset(self.sinks)
        object.__setattr__(self, "_frozen", True)
        return self

    def thaw(self) -> ForwardingGraph:
        """A mutable copy of this graph (the inverse of :meth:`freeze`)."""
        return ForwardingGraph(
            granularity=self.granularity,
            nodes=set(self.nodes),
            edges=set(self.edges),
            sources=set(self.sources),
            sinks=set(self.sinks),
        )

    def _assert_mutable(self) -> None:
        if self._frozen:
            raise SnapshotError(
                "cannot mutate a frozen forwarding graph (it may be interned and "
                "shared); use thaw() to obtain a mutable copy"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> None:
        """Add a forwarding hop."""
        self._assert_mutable()
        self.nodes.add(name)
        self._fingerprint = None

    def add_edge(self, src: str, dst: str) -> None:
        """Add a directed forwarding link, creating its endpoints as needed."""
        self._assert_mutable()
        self.nodes.add(src)
        self.nodes.add(dst)
        self.edges.add((src, dst))
        self._fingerprint = None

    def add_path(self, path: Sequence[str]) -> None:
        """Add an explicit path (its first hop becomes a source, last a sink)."""
        self._assert_mutable()
        if not path:
            raise SnapshotError("cannot add an empty forwarding path")
        for name in path:
            self.nodes.add(name)
        for src, dst in zip(path, path[1:]):
            self.edges.add((src, dst))
        self.sources.add(path[0])
        self.sinks.add(path[-1])
        self._fingerprint = None

    @classmethod
    def from_paths(
        cls, paths: Iterable[Sequence[str]], *, granularity: Granularity = Granularity.ROUTER
    ) -> ForwardingGraph:
        """Build a graph that contains (at least) the given paths.

        Note that, as in the paper's format, the graph is a *compact*
        encoding: if two paths share hops, their interleavings are also
        encoded.  Use one graph per traffic class, which is how the
        simulator emits them.
        """
        graph = cls(granularity=granularity)
        for path in paths:
            graph.add_path(path)
        return graph

    @classmethod
    def empty(cls, *, granularity: Granularity = Granularity.ROUTER) -> ForwardingGraph:
        """A graph with no traffic at all (used when a FEC disappears)."""
        return cls(granularity=granularity)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def _adjacency_map(self) -> dict[str, list[str]]:
        """Successor lists per node, cached permanently on frozen graphs.

        Unfrozen graphs rebuild the index on every call: their sets can be
        mutated directly (the same hazard the fingerprint token guards
        against), so a cache could silently go stale.
        """
        if self._adjacency is not None:
            return self._adjacency
        adjacency: dict[str, list[str]] = {node: [] for node in self.nodes}
        for src, dst in self.edges:
            adjacency[src].append(dst)
        if self._frozen:
            self._adjacency = adjacency
        return adjacency

    def successors(self, node: str) -> list[str]:
        """Forwarding next-hops of ``node``."""
        return list(self._adjacency_map().get(node, ()))

    def is_empty(self) -> bool:
        """True when the graph encodes no paths."""
        return not self.sources or not self.sinks

    def is_acyclic(self) -> bool:
        """True when the graph has no directed cycle (forwarding loops)."""
        adjacency = self._adjacency_map()
        indegree: dict[str, int] = {node: 0 for node in self.nodes}
        for dsts in adjacency.values():
            for dst in dsts:
                indegree[dst] += 1
        queue = deque(node for node, degree in indegree.items() if degree == 0)
        visited = 0
        while queue:
            node = queue.popleft()
            visited += 1
            for nxt in adjacency[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    queue.append(nxt)
        return visited == len(self.nodes)

    def count_paths(self) -> int:
        """Exact number of source→sink paths (requires an acyclic graph).

        This is the quantity the paper uses to illustrate the compaction: a
        38-vertex DAG can encode 10^8 interface-level ECMP paths.
        """
        if not self.is_acyclic():
            raise SnapshotError("cannot count paths of a cyclic forwarding graph")
        adjacency = self._adjacency_map()

        memo: dict[str, int] = {}

        def count_from(node: str) -> int:
            if node in memo:
                return memo[node]
            total = 1 if node in self.sinks else 0
            for nxt in adjacency[node]:
                total += count_from(nxt)
            memo[node] = total
            return total

        return sum(count_from(source) for source in self.sources)

    def paths(self, *, max_paths: int = 10_000, max_length: int = 64) -> Iterator[Path]:
        """Enumerate source→sink paths (bounded; breadth-first by length)."""
        adjacency = self._adjacency_map()
        produced = 0
        queue: deque[tuple[str, Path]] = deque(
            (source, (source,)) for source in sorted(self.sources)
        )
        while queue and produced < max_paths:
            node, path = queue.popleft()
            if node in self.sinks:
                yield path
                produced += 1
                if produced >= max_paths:
                    return
            if len(path) >= max_length:
                continue
            for nxt in sorted(adjacency[node]):
                queue.append((nxt, path + (nxt,)))

    def path_set(self, *, max_paths: int = 10_000, max_length: int = 64) -> set[Path]:
        """The (bounded) set of forwarding paths."""
        return set(self.paths(max_paths=max_paths, max_length=max_length))

    def locations(self) -> set[str]:
        """All hop names used by this graph."""
        return set(self.nodes)

    def fingerprint(self) -> str:
        """A cheap canonical fingerprint of the forwarding behaviour.

        Two graphs with the same fingerprint encode the same path set at the
        same granularity, so a verification verdict computed for one applies
        to the other.  The digest is order-independent (all components are
        sorted) and stable across processes, which lets the verifier memoize
        per-FEC checks across the thousands of identical or unchanged graphs
        a backbone change produces.

        The digest is cached; the mutator methods (:meth:`add_node`,
        :meth:`add_edge`, :meth:`add_path`) invalidate it, and the cache is
        additionally revalidated against order-independent content hashes of
        the component sets, so direct set mutation after a fingerprint
        (``graph.sources.add(...)``, same-size edge swaps, ...) also forces
        a recompute instead of returning a stale digest.  Frozen graphs skip
        the revalidation entirely: their content cannot change, so a cached
        digest is returned in O(1) — the hot path of the interning store.
        """
        if self._frozen:
            if self._fingerprint is not None:
                return self._fingerprint[1]
            token = None
        else:
            token = self._content_token()
            if self._fingerprint is not None and self._fingerprint[0] == token:
                return self._fingerprint[1]
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.granularity.value.encode())
        for section in (
            sorted(self.nodes),
            [f"{src}\x01{dst}" for src, dst in sorted(self.edges)],
            sorted(self.sources),
            sorted(self.sinks),
        ):
            digest.update(b"\x00\x00")
            for item in section:
                digest.update(item.encode())
                digest.update(b"\x00")
        hexdigest = digest.hexdigest()
        self._fingerprint = (token, hexdigest)
        return hexdigest

    # ------------------------------------------------------------------
    # Granularity conversion
    # ------------------------------------------------------------------
    def coarsen(self, mapping: Mapping[str, str], granularity: Granularity) -> ForwardingGraph:
        """Merge vertices that map to the same coarser-granularity entity.

        ``mapping`` maps node names at this graph's granularity to names at
        the target granularity (e.g. interface → router).  Names missing from
        the mapping are kept unchanged, which conveniently handles the
        special ``drop`` node and external locations.  Self-loops created by
        merging consecutive same-entity hops are elided, matching the paper's
        definition of coarser-granularity paths.
        """

        def translate(name: str) -> str:
            return mapping.get(name, name)

        coarse = ForwardingGraph(granularity=granularity)
        for node in self.nodes:
            coarse.add_node(translate(node))
        for src, dst in self.edges:
            new_src, new_dst = translate(src), translate(dst)
            if new_src != new_dst:
                coarse.add_edge(new_src, new_dst)
        coarse.sources = {translate(node) for node in self.sources}
        coarse.sinks = {translate(node) for node in self.sinks}
        return coarse

    # ------------------------------------------------------------------
    # FSA construction (paper Section 6.1)
    # ------------------------------------------------------------------
    def to_fsa(self, alphabet: Alphabet) -> FSA:
        """Convert the graph to an FSA accepting exactly its path set.

        Vertices become states and edges transitions; an extra initial state
        consumes the first hop of every source, and sink states accept.
        Symbols are registered with ``alphabet`` on the fly.
        """
        fsa = FSA(alphabet)
        state_of: dict[str, int] = {}
        for node in sorted(self.nodes):
            state_of[node] = fsa.add_state()
        for source in self.sources:
            fsa.add_transition(fsa.initial, alphabet.intern(source), state_of[source])
        for src, dst in self.edges:
            fsa.add_transition(state_of[src], alphabet.intern(dst), state_of[dst])
        for sink in self.sinks:
            fsa.mark_accepting(state_of[sink])
        return fsa

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable representation (the on-disk exchange format)."""
        return {
            "granularity": self.granularity.value,
            "nodes": sorted(self.nodes),
            "edges": sorted(list(edge) for edge in self.edges),
            "sources": sorted(self.sources),
            "sinks": sorted(self.sinks),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> ForwardingGraph:
        """Rebuild a graph from :meth:`to_dict` output."""
        try:
            graph = cls(granularity=Granularity(data["granularity"]))
            graph.nodes = set(data["nodes"])
            graph.edges = {(src, dst) for src, dst in data["edges"]}
            graph.sources = set(data["sources"])
            graph.sinks = set(data["sinks"])
        except (KeyError, ValueError) as exc:
            raise SnapshotError(f"malformed forwarding graph record: {exc}") from exc
        unknown = (graph.sources | graph.sinks) - graph.nodes
        if unknown:
            raise SnapshotError(f"sources/sinks reference unknown nodes: {sorted(unknown)}")
        return graph


def drop_graph(*, granularity: Granularity = Granularity.ROUTER) -> ForwardingGraph:
    """A forwarding graph for traffic that the network discards.

    Following the paper's convention (Section 5.1), dropped traffic is
    modelled as the special single-location path ``drop``, so the graph has
    one node that is both source and sink.
    """
    graph = ForwardingGraph(granularity=granularity)
    graph.add_path([DROP])
    return graph
