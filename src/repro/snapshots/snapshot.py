"""Network snapshots: per-FEC forwarding graphs plus (de)serialization.

A :class:`Snapshot` is the unit the Rela decision procedure consumes: for a
given point in time (pre-change or post-change) it maps every flow
equivalence class to the forwarding graph describing where that traffic goes.
Snapshots are produced by the simulator (:mod:`repro.network.simulator`), by
the synthetic workload generators, or loaded from the JSON exchange format.

Graphs are not stored directly: every graph added to a snapshot is interned
into the snapshot's :class:`~repro.snapshots.graphstore.GraphStore` (freezing
it in place) and the snapshot keeps only ``fec_id → ref``.  Backbone changes
produce thousands of identical graphs, so this makes the snapshot layer pay
per *distinct* forwarding behaviour, not per FEC: :meth:`Snapshot.copy` is
copy-on-write (the clone shares the store and copies two dicts), and the
verifier can group FECs by interned ref without re-hashing anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path as FilePath
from collections.abc import Iterable, Iterator

from repro.errors import SnapshotError
from repro.rela.locations import Granularity
from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.forwarding_graph import ForwardingGraph
from repro.snapshots.graphstore import GraphStore


@dataclass(slots=True)
class Snapshot:
    """The forwarding state of the whole network at one point in time."""

    name: str = "snapshot"
    granularity: Granularity = Granularity.ROUTER
    _fecs: dict[str, FlowEquivalenceClass] = field(default_factory=dict)
    _store: GraphStore = field(default_factory=GraphStore)
    _refs: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    @classmethod
    def with_shared_store(
        cls,
        store: GraphStore,
        *,
        name: str = "snapshot",
        granularity: Granularity = Granularity.ROUTER,
    ) -> "Snapshot":
        """An empty snapshot interning into a caller-owned (shared) store.

        Contingency sweeps intern every derived snapshot into one
        cross-contingency store, so identical forwarding behaviours resolve
        to identical refs *across* contingencies — the unit the sweep's
        verdict dedup counts on.  Sharing is safe because interned graphs
        are frozen; refs remain local to ``store``.
        """
        snapshot = cls(name=name, granularity=granularity)
        snapshot._store = store
        return snapshot

    def add(self, fec: FlowEquivalenceClass, graph: ForwardingGraph) -> None:
        """Record the forwarding graph of one traffic class.

        The graph is interned (and thereby frozen); adding the same graph —
        or any structurally identical one — for many FECs stores it once.
        """
        if fec.fec_id in self._fecs:
            raise SnapshotError(f"duplicate FEC {fec.fec_id!r} in snapshot {self.name!r}")
        self._fecs[fec.fec_id] = fec
        self._refs[fec.fec_id] = self._store.intern(graph)

    def replace(self, fec_id: str, graph: ForwardingGraph) -> None:
        """Overwrite the forwarding graph of an existing traffic class."""
        if fec_id not in self._fecs:
            raise SnapshotError(f"unknown FEC {fec_id!r} in snapshot {self.name!r}")
        self._refs[fec_id] = self._store.intern(graph)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fecs)

    def __contains__(self, fec_id: str) -> bool:
        return fec_id in self._fecs

    @property
    def store(self) -> GraphStore:
        """The interning store backing this snapshot (shared by copies)."""
        return self._store

    def fecs(self) -> list[FlowEquivalenceClass]:
        """All flow equivalence classes, in insertion order."""
        return list(self._fecs.values())

    def fec_ids(self) -> list[str]:
        """All FEC identifiers."""
        return list(self._fecs.keys())

    def fec(self, fec_id: str) -> FlowEquivalenceClass:
        """Look up one FEC by id."""
        try:
            return self._fecs[fec_id]
        except KeyError:
            raise SnapshotError(f"unknown FEC {fec_id!r} in snapshot {self.name!r}") from None

    def graph(self, fec_id: str) -> ForwardingGraph:
        """The forwarding graph of one FEC (empty graph if absent)."""
        ref = self._refs.get(fec_id)
        if ref is None:
            return ForwardingGraph.empty(granularity=self.granularity)
        return self._store.graph(ref)

    def graph_ref(self, fec_id: str) -> int | None:
        """The interned ref of one FEC's graph (None if absent).

        Refs are integers local to :attr:`store`; two FECs share a ref iff
        their forwarding graphs are structurally identical.  This is the
        dedup-first entry point the verifier groups by.
        """
        return self._refs.get(fec_id)

    def distinct_graph_refs(self) -> set[int]:
        """The set of interned refs backing this snapshot's FECs.

        This is what a verification session pins (ref-counts) on behalf of
        its current snapshot: the distinct forwarding behaviours, not the
        per-FEC multiplicity.
        """
        return set(self._refs.values())

    def distinct_graph_count(self) -> int:
        """Number of distinct forwarding behaviours across all FECs."""
        return len(self.distinct_graph_refs())

    def items(self) -> Iterator[tuple[FlowEquivalenceClass, ForwardingGraph]]:
        """Iterate over (FEC, forwarding graph) pairs."""
        for fec_id, fec in self._fecs.items():
            yield fec, self._store.graph(self._refs[fec_id])

    def locations(self) -> set[str]:
        """All location names appearing in any forwarding graph."""
        names: set[str] = set()
        for ref in set(self._refs.values()):
            names |= self._store.graph(ref).locations()
        return names

    def copy(self, *, name: str | None = None) -> "Snapshot":
        """A copy suitable for applying synthetic changes (copy-on-write).

        The clone shares this snapshot's graph store — interned graphs are
        frozen, so sharing is safe — and copies only the FEC and ref maps.
        ``replace`` on either snapshot rebinds a ref and never mutates a
        graph, so copies stay independent at O(#FECs) dict-entry cost
        instead of a JSON round-trip of every graph.
        """
        clone = Snapshot(name=name or self.name, granularity=self.granularity)
        clone._fecs = dict(self._fecs)
        clone._store = self._store
        clone._refs = dict(self._refs)
        return clone

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable representation of the whole snapshot."""
        return {
            "name": self.name,
            "granularity": self.granularity.value,
            "classes": [
                {"fec": fec.to_dict(), "graph": graph.to_dict()} for fec, graph in self.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Snapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        try:
            snapshot = cls(name=data["name"], granularity=Granularity(data["granularity"]))
            for record in data["classes"]:
                snapshot.add(
                    FlowEquivalenceClass.from_dict(record["fec"]),
                    ForwardingGraph.from_dict(record["graph"]),
                )
        except (KeyError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot record: {exc}") from exc
        return snapshot

    def to_json(self, path: str | FilePath | None = None, *, indent: int | None = None) -> str:
        """Serialize to JSON, optionally writing to ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            FilePath(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: str | FilePath) -> "Snapshot":
        """Load a snapshot from a JSON string or file path."""
        if isinstance(source, FilePath) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = FilePath(source).read_text()
        else:
            text = str(source)
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"invalid snapshot JSON: {exc}") from exc
        return cls.from_dict(data)


def build_snapshot(
    name: str,
    entries: Iterable[tuple[FlowEquivalenceClass, Iterable[tuple[str, ...]]]],
    *,
    granularity: Granularity = Granularity.ROUTER,
) -> Snapshot:
    """Build a snapshot from explicit per-FEC path lists (testing helper)."""
    snapshot = Snapshot(name=name, granularity=granularity)
    for fec, paths in entries:
        snapshot.add(fec, ForwardingGraph.from_paths(paths, granularity=granularity))
    return snapshot
