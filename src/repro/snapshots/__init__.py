"""Forwarding state exchange: graphs, flow equivalence classes, snapshots, diffs."""

from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.forwarding_graph import ForwardingGraph, drop_graph
from repro.snapshots.pathdiff import DiffEntry, PathDiff, path_diff
from repro.snapshots.snapshot import Snapshot, build_snapshot

__all__ = [
    "FlowEquivalenceClass",
    "ForwardingGraph",
    "drop_graph",
    "Snapshot",
    "build_snapshot",
    "PathDiff",
    "DiffEntry",
    "path_diff",
]
