"""Forwarding state exchange: graphs, flow equivalence classes, snapshots, diffs.

**Interning and the freeze contract.**  Snapshots do not own graph objects:
every :class:`ForwardingGraph` handed to :meth:`Snapshot.add` /
:meth:`Snapshot.replace` is interned by canonical fingerprint into the
snapshot's :class:`GraphStore`, which *freezes the graph in place* (the
component sets become frozensets; mutators raise).  From then on the graph is
shared — between FECs with identical forwarding behaviour, between a snapshot
and its copy-on-write :meth:`Snapshot.copy` clones, and with verifier worker
processes.  The contract is therefore: **build a graph fully, then hand it
over; mutate-then-intern is an error** (enforced — mutation attempts raise
:class:`~repro.errors.SnapshotError` or ``AttributeError``).  To derive a
changed graph from a stored one, use
:meth:`ForwardingGraph.thaw` (mutable copy) or the pure transforms
(:meth:`ForwardingGraph.coarsen`), then ``replace`` it, which re-interns.

Frozen graphs amortize their derived state: the fingerprint is validated in
O(1) (no content re-hash) and the successor index is cached, which is what
lets the verifier dedup and check 10^5-FEC changes at a cost proportional to
the number of *distinct* graph pairs.
"""

from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.forwarding_graph import ForwardingGraph, drop_graph
from repro.snapshots.graphstore import GraphStore
from repro.snapshots.pathdiff import DiffEntry, PathDiff, path_diff
from repro.snapshots.snapshot import Snapshot, build_snapshot

__all__ = [
    "FlowEquivalenceClass",
    "ForwardingGraph",
    "GraphStore",
    "drop_graph",
    "Snapshot",
    "build_snapshot",
    "PathDiff",
    "DiffEntry",
    "path_diff",
]
