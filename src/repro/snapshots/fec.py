"""Flow equivalence classes (FECs).

The verification workflow (paper Section 2.3) aggregates observed flows into
*equivalence classes*: all flows with identical forwarding paths in both the
pre-change and post-change snapshots form one class, and Rela analyses each
class independently (and in parallel).

A :class:`FlowEquivalenceClass` carries the traffic descriptors needed by the
prefix-predicate extension of Section 7 (source/destination prefixes and the
ingress location) plus free-form metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.errors import SnapshotError


@dataclass(frozen=True, slots=True)
class FlowEquivalenceClass:
    """One flow equivalence class.

    Attributes
    ----------
    fec_id:
        Unique identifier within a snapshot pair (e.g. ``"fec-000123"``).
    dst_prefix:
        Destination IP prefix of the traffic (CIDR string).
    src_prefix:
        Source IP prefix, when known.
    ingress:
        The location (at the snapshot's granularity) where the traffic enters
        the network; the paper defines a flow as a 5-tuple that starts at a
        particular point in the network.
    metadata:
        Free-form attributes (customer, service tier, measurement volume...).
    """

    fec_id: str
    dst_prefix: str = "0.0.0.0/0"
    src_prefix: str = "0.0.0.0/0"
    ingress: str = ""
    metadata: Mapping[str, str] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.fec_id:
            raise SnapshotError("FEC id must be non-empty")

    def to_dict(self) -> dict:
        """A JSON-serializable representation."""
        return {
            "fec_id": self.fec_id,
            "dst_prefix": self.dst_prefix,
            "src_prefix": self.src_prefix,
            "ingress": self.ingress,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FlowEquivalenceClass":
        """Rebuild a FEC from :meth:`to_dict` output."""
        try:
            return cls(
                fec_id=data["fec_id"],
                dst_prefix=data.get("dst_prefix", "0.0.0.0/0"),
                src_prefix=data.get("src_prefix", "0.0.0.0/0"),
                ingress=data.get("ingress", ""),
                metadata=dict(data.get("metadata", {})),
            )
        except KeyError as exc:
            raise SnapshotError(f"malformed FEC record: missing {exc}") from exc

    def __str__(self) -> str:
        return f"{{({self.dst_prefix}, ingress = {self.ingress})}}"
