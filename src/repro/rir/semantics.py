"""Set-based reference semantics for the RIR (paper Appendix A).

These evaluators compute the *denotation* of RIR expressions directly over
finite sets of concrete paths.  They exist for two reasons:

1. they are an executable transcription of the paper's semantics, making the
   formal definitions testable; and
2. they are used as a differential-testing oracle for the automata-based
   compiler in :mod:`repro.rir.compiler`: on bounded models, the compiled
   automata must accept exactly the words the reference semantics computes.

Unbounded constructs (Kleene star, complement) are evaluated relative to an
explicit length bound; evaluating them without a bound raises
:class:`~repro.errors.SemanticsError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.errors import SemanticsError
from repro.rir import ast

Path = tuple[str, ...]
PathPair = tuple[Path, Path]


@dataclass(slots=True)
class RIRModel:
    """A finite interpretation of the RIR's free symbols.

    Attributes
    ----------
    pre:
        The concrete paths of the pre-change snapshot (``PreState``).
    post:
        The concrete paths of the post-change snapshot (``PostState``).
    sigma:
        The full symbol alphabet; needed for complement and the universe of
        bounded star evaluation.
    max_length:
        Length bound used for star, complement and relation star.  Every path
        in ``pre``/``post`` should respect this bound for the semantics to be
        exact on the model.
    """

    pre: set[Path] = field(default_factory=set)
    post: set[Path] = field(default_factory=set)
    sigma: tuple[str, ...] = ()
    max_length: int = 8

    def universe(self) -> set[Path]:
        """All words over ``sigma`` of length at most ``max_length``."""
        if not self.sigma and self.max_length > 0:
            return {()}
        words: set[Path] = {()}
        for length in range(1, self.max_length + 1):
            words.update(product(self.sigma, repeat=length))
        return words


def _bounded(paths: set[Path], bound: int) -> set[Path]:
    return {path for path in paths if len(path) <= bound}


def eval_pathset(node: ast.PathSet, model: RIRModel) -> set[Path]:
    """Evaluate a path-set expression to a finite set of paths."""
    if isinstance(node, ast.PSSymbol):
        return {(node.name,)}
    if isinstance(node, ast.PSEmpty):
        return set()
    if isinstance(node, ast.PSEpsilon):
        return {()}
    if isinstance(node, ast.PSPreState):
        return set(model.pre)
    if isinstance(node, ast.PSPostState):
        return set(model.post)
    if isinstance(node, ast.PSRegex):
        return _eval_regex(node.regex, model)
    if isinstance(node, ast.PSUnion):
        return eval_pathset(node.left, model) | eval_pathset(node.right, model)
    if isinstance(node, ast.PSConcat):
        left = eval_pathset(node.left, model)
        right = eval_pathset(node.right, model)
        return _bounded({p + q for p in left for q in right}, model.max_length)
    if isinstance(node, ast.PSStar):
        return _star(eval_pathset(node.inner, model), model.max_length)
    if isinstance(node, ast.PSIntersect):
        return eval_pathset(node.left, model) & eval_pathset(node.right, model)
    if isinstance(node, ast.PSComplement):
        return model.universe() - eval_pathset(node.inner, model)
    if isinstance(node, ast.PSImage):
        rel = eval_rel(node.rel, model)
        source = eval_pathset(node.pathset, model)
        return {q for (p, q) in rel if p in source}
    raise SemanticsError(f"unknown PathSet node: {node!r}")


def _eval_regex(regex, model: RIRModel) -> set[Path]:
    """Evaluate an embedded :class:`~repro.automata.regex.Regex` to paths."""
    from repro.automata import regex as rx

    if isinstance(regex, rx.Empty):
        return set()
    if isinstance(regex, rx.Epsilon):
        return {()}
    if isinstance(regex, rx.Sym):
        return {(regex.name,)}
    if isinstance(regex, rx.SymSet):
        return {(name,) for name in regex.names}
    if isinstance(regex, rx.AnySym):
        return {(name,) for name in model.sigma}
    if isinstance(regex, rx.Union):
        return _eval_regex(regex.left, model) | _eval_regex(regex.right, model)
    if isinstance(regex, rx.Concat):
        left = _eval_regex(regex.left, model)
        right = _eval_regex(regex.right, model)
        return _bounded({p + q for p in left for q in right}, model.max_length)
    if isinstance(regex, rx.Star):
        return _star(_eval_regex(regex.inner, model), model.max_length)
    if isinstance(regex, rx.Intersect):
        return _eval_regex(regex.left, model) & _eval_regex(regex.right, model)
    if isinstance(regex, rx.Complement):
        return model.universe() - _eval_regex(regex.inner, model)
    raise SemanticsError(f"unknown Regex node: {regex!r}")


def _star(base: set[Path], bound: int) -> set[Path]:
    """Bounded Kleene star: all concatenations of base paths up to ``bound``."""
    result: set[Path] = {()}
    frontier: set[Path] = {()}
    while frontier:
        next_frontier: set[Path] = set()
        for prefix in frontier:
            for piece in base:
                if not piece:
                    continue
                candidate = prefix + piece
                if len(candidate) <= bound and candidate not in result:
                    result.add(candidate)
                    next_frontier.add(candidate)
        frontier = next_frontier
    return result


def eval_rel(node: ast.Rel, model: RIRModel) -> set[PathPair]:
    """Evaluate a relation expression to a finite set of path pairs."""
    if isinstance(node, ast.RCross):
        left = eval_pathset(node.left, model)
        right = eval_pathset(node.right, model)
        return {(p, q) for p in left for q in right}
    if isinstance(node, ast.RIdentity):
        return {(p, p) for p in eval_pathset(node.pathset, model)}
    if isinstance(node, ast.REmpty):
        return set()
    if isinstance(node, ast.REpsilon):
        return {((), ())}
    if isinstance(node, ast.RUnion):
        return eval_rel(node.left, model) | eval_rel(node.right, model)
    if isinstance(node, ast.RConcat):
        left = eval_rel(node.left, model)
        right = eval_rel(node.right, model)
        pairs = {
            (p1 + p2, q1 + q2)
            for (p1, q1) in left
            for (p2, q2) in right
        }
        return {
            (p, q)
            for (p, q) in pairs
            if len(p) <= model.max_length and len(q) <= model.max_length
        }
    if isinstance(node, ast.RStar):
        return _rel_star(eval_rel(node.inner, model), model.max_length)
    if isinstance(node, ast.RCompose):
        left = eval_rel(node.left, model)
        right = eval_rel(node.right, model)
        return {(p, r) for (p, q1) in left for (q2, r) in right if q1 == q2}
    raise SemanticsError(f"unknown Rel node: {node!r}")


def _rel_star(base: set[PathPair], bound: int) -> set[PathPair]:
    """Bounded star of a relation (pairwise concatenation of pairs)."""
    result: set[PathPair] = {((), ())}
    frontier: set[PathPair] = {((), ())}
    while frontier:
        next_frontier: set[PathPair] = set()
        for (prefix_p, prefix_q) in frontier:
            for (piece_p, piece_q) in base:
                if not piece_p and not piece_q:
                    continue
                candidate = (prefix_p + piece_p, prefix_q + piece_q)
                if (
                    len(candidate[0]) <= bound
                    and len(candidate[1]) <= bound
                    and candidate not in result
                ):
                    result.add(candidate)
                    next_frontier.add(candidate)
        frontier = next_frontier
    return result


def holds(node: ast.Spec, model: RIRModel) -> bool:
    """Decide ``model ⊨ spec`` per the satisfaction relation of Appendix A."""
    if isinstance(node, ast.SpecEqual):
        return eval_pathset(node.left, model) == eval_pathset(node.right, model)
    if isinstance(node, ast.SpecSubset):
        return eval_pathset(node.left, model) <= eval_pathset(node.right, model)
    if isinstance(node, ast.SpecAnd):
        return holds(node.left, model) and holds(node.right, model)
    if isinstance(node, ast.SpecOr):
        return holds(node.left, model) or holds(node.right, model)
    if isinstance(node, ast.SpecNot):
        return not holds(node.inner, model)
    raise SemanticsError(f"unknown Spec node: {node!r}")
