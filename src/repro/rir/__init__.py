"""The Regular Intermediate Representation (RIR) of Rela.

The RIR (paper Section 5.2) is the layer between the Rela surface language
and the automata-theoretic decision procedure: regular path sets, regular
relations and boolean assertions over them.

* :mod:`repro.rir.ast` — expression nodes;
* :mod:`repro.rir.semantics` — set-based reference semantics (Appendix A);
* :mod:`repro.rir.compiler` — compilation to FSAs/FSTs;
* :mod:`repro.rir.checker` — the decision procedure with witnesses.
"""

from repro.rir.ast import (
    PathSet,
    PSComplement,
    PSConcat,
    PSEmpty,
    PSEpsilon,
    PSImage,
    PSIntersect,
    PSPostState,
    PSPreState,
    PSRegex,
    PSStar,
    PSSymbol,
    PSUnion,
    RCompose,
    RConcat,
    RCross,
    REmpty,
    REpsilon,
    RIdentity,
    RStar,
    RUnion,
    Rel,
    Spec,
    SpecAnd,
    SpecEqual,
    SpecNot,
    SpecOr,
    SpecSubset,
    union_all,
    word,
)
from repro.rir.checker import AssertionResult, SpecVerdict, check_spec
from repro.rir.compiler import RIRContext, compile_pathset, compile_rel, compile_rel_lazy
from repro.rir.semantics import RIRModel, eval_pathset, eval_rel, holds

__all__ = [
    "PathSet",
    "PSSymbol",
    "PSEmpty",
    "PSEpsilon",
    "PSPreState",
    "PSPostState",
    "PSRegex",
    "PSUnion",
    "PSConcat",
    "PSStar",
    "PSIntersect",
    "PSComplement",
    "PSImage",
    "Rel",
    "RCross",
    "RIdentity",
    "REmpty",
    "REpsilon",
    "RUnion",
    "RConcat",
    "RStar",
    "RCompose",
    "Spec",
    "SpecEqual",
    "SpecSubset",
    "SpecAnd",
    "SpecOr",
    "SpecNot",
    "word",
    "union_all",
    "RIRContext",
    "compile_pathset",
    "compile_rel",
    "compile_rel_lazy",
    "AssertionResult",
    "SpecVerdict",
    "check_spec",
    "RIRModel",
    "eval_pathset",
    "eval_rel",
    "holds",
]
