"""Compilation of RIR expressions to finite automata and transducers.

This is the first half of the decision procedure of Section 6: every path-set
expression becomes an :class:`~repro.automata.fsa.FSA` and every relation
becomes an :class:`~repro.automata.fst.FST`.  The snapshot symbols
``PreState`` / ``PostState`` are supplied by the caller as already-built
automata (typically converted from forwarding DAGs by
:mod:`repro.verifier.state_automata`).

Relations can be compiled two ways:

* :func:`compile_rel` — fully eager; every union, composition and identity
  is materialized as a concrete FST.  Kept as the reference oracle.
* :func:`compile_rel_lazy` — the spec-compilation path.  Unions and
  compositions become delayed nodes (:class:`~repro.automata.lazy.LazyUnion`,
  :class:`~repro.automata.lazy.LazyCompose`), identities stay symbolic
  (:class:`~repro.automata.lazy.LazyIdentity`), and the branch-shadowing
  pattern ``I(¬Z)`` compiles to a
  :class:`~repro.automata.lazy.LazyComplementZone` that never determinizes,
  completes or complements the zone automaton up front.  Only the small
  atomic leaves (cross products, concatenations, stars) are materialized
  eagerly; the resulting delayed DAG is forced at the decision boundary by
  the image operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.alphabet import Alphabet
from repro.automata.fsa import FSA
from repro.automata.fst import FST
from repro.automata.lazy import (
    LazyComplementZone,
    LazyCompose,
    LazyFST,
    LazyIdentity,
    LazyUnion,
)
from repro.automata.regex import Complement as RegexComplement
from repro.errors import CompilationError
from repro.rir import ast


@dataclass(slots=True)
class RIRContext:
    """Everything needed to compile RIR expressions for one verification task.

    Attributes
    ----------
    alphabet:
        Shared symbol alphabet.  It must already contain every network
        location mentioned by the snapshots or the specification, because
        complementation is relative to the alphabet at compilation time.
    pre / post:
        FSAs denoting the pre-change and post-change forwarding path sets.
    cache:
        Structural memoisation of compiled sub-expressions.  RIR trees
        produced by the Rela front end repeat zone sub-expressions many
        times; caching keeps compilation linear in distinct sub-terms.
    """

    alphabet: Alphabet
    pre: FSA
    post: FSA
    cache: dict[ast.PathSet | ast.Rel, FSA | FST | LazyFST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.pre.alphabet is not self.alphabet or self.post.alphabet is not self.alphabet:
            raise CompilationError(
                "PreState/PostState automata must use the context's alphabet instance"
            )


def compile_pathset(node: ast.PathSet, ctx: RIRContext) -> FSA:
    """Compile a path-set expression to an FSA."""
    cached = ctx.cache.get(node)
    if isinstance(cached, FSA):
        return cached
    result = _compile_pathset(node, ctx)
    try:
        ctx.cache[node] = result
    except TypeError:
        pass  # unhashable (should not happen: all nodes are frozen dataclasses)
    return result


def _compile_pathset(node: ast.PathSet, ctx: RIRContext) -> FSA:
    if isinstance(node, ast.PSSymbol):
        return FSA.symbol(ctx.alphabet, node.name)
    if isinstance(node, ast.PSEmpty):
        return FSA.empty_language(ctx.alphabet)
    if isinstance(node, ast.PSEpsilon):
        return FSA.epsilon_language(ctx.alphabet)
    if isinstance(node, ast.PSPreState):
        return ctx.pre
    if isinstance(node, ast.PSPostState):
        return ctx.post
    if isinstance(node, ast.PSRegex):
        return node.regex.to_fsa(ctx.alphabet)
    if isinstance(node, ast.PSUnion):
        return compile_pathset(node.left, ctx).union(compile_pathset(node.right, ctx))
    if isinstance(node, ast.PSConcat):
        return compile_pathset(node.left, ctx).concat(compile_pathset(node.right, ctx))
    if isinstance(node, ast.PSStar):
        return compile_pathset(node.inner, ctx).star()
    if isinstance(node, ast.PSIntersect):
        return compile_pathset(node.left, ctx).intersect(compile_pathset(node.right, ctx))
    if isinstance(node, ast.PSComplement):
        # Minimize before the automaton is embedded into identities and
        # compositions: the subset construction behind complement() is often
        # far from minimal, and every extra state multiplies through
        # relation products (mirrors regex.Complement.to_fsa).
        return compile_pathset(node.inner, ctx).complement().minimize()
    if isinstance(node, ast.PSImage):
        relation = compile_rel(node.rel, ctx)
        return relation.image(compile_pathset(node.pathset, ctx))
    raise CompilationError(f"unknown PathSet node: {node!r}")


def compile_rel(node: ast.Rel, ctx: RIRContext) -> FST:
    """Compile a relation expression to an FST."""
    cached = ctx.cache.get(node)
    if isinstance(cached, FST):
        return cached
    result = _compile_rel(node, ctx)
    try:
        ctx.cache[node] = result
    except TypeError:
        pass
    return result


def _compile_rel(node: ast.Rel, ctx: RIRContext) -> FST:
    if isinstance(node, ast.RCross):
        return FST.cross(compile_pathset(node.left, ctx), compile_pathset(node.right, ctx))
    if isinstance(node, ast.RIdentity):
        return FST.identity(compile_pathset(node.pathset, ctx))
    if isinstance(node, ast.REmpty):
        return FST.empty_relation(ctx.alphabet)
    if isinstance(node, ast.REpsilon):
        return FST.epsilon_relation(ctx.alphabet)
    if isinstance(node, ast.RUnion):
        return compile_rel(node.left, ctx).union(compile_rel(node.right, ctx))
    if isinstance(node, ast.RConcat):
        return compile_rel(node.left, ctx).concat(compile_rel(node.right, ctx))
    if isinstance(node, ast.RStar):
        return compile_rel(node.inner, ctx).star()
    if isinstance(node, ast.RCompose):
        # Trim between composition stages so chained RCompose trees (branch
        # shadowing composes one relation per preceding branch) do not
        # accumulate dead product states multiplicatively.
        return compile_rel(node.left, ctx).compose(compile_rel(node.right, ctx)).trim()
    raise CompilationError(f"unknown Rel node: {node!r}")


# ----------------------------------------------------------------------
# Delayed compilation (the spec-compilation path)
# ----------------------------------------------------------------------
def compile_rel_lazy(node: ast.Rel, ctx: RIRContext) -> FST | LazyFST:
    """Compile a relation expression into a delayed-operation DAG.

    Structural memoisation is shared with the eager compiler: a node cached
    as a concrete FST is reused as a lazy leaf, and vice versa a lazily
    compiled node is never recompiled.
    """
    cached = ctx.cache.get(node)
    if isinstance(cached, (FST, LazyFST)):
        return cached
    result = _compile_rel_lazy(node, ctx)
    try:
        ctx.cache[node] = result
    except TypeError:
        pass
    return result


def _complement_operand(node: ast.PathSet) -> ast.PathSet | None:
    """The path set ``P`` when ``node`` denotes ``¬P``, else ``None``.

    Both spellings produced by the Rela front end are recognized: the RIR
    complement node and a lifted regex whose root is a complement.
    """
    if isinstance(node, ast.PSComplement):
        return node.inner
    if isinstance(node, ast.PSRegex) and isinstance(node.regex, RegexComplement):
        return ast.PSRegex(node.regex.inner)
    return None


def _compile_rel_lazy(node: ast.Rel, ctx: RIRContext) -> FST | LazyFST:
    if isinstance(node, ast.RUnion):
        return LazyUnion(compile_rel_lazy(node.left, ctx), compile_rel_lazy(node.right, ctx))
    if isinstance(node, ast.RCompose):
        return LazyCompose(compile_rel_lazy(node.left, ctx), compile_rel_lazy(node.right, ctx))
    if isinstance(node, ast.RIdentity):
        inner = _complement_operand(node.pathset)
        if inner is not None:
            # The branch-shadowing prefix I(¬Z): delay determinization,
            # completion and complementation of the zone entirely.
            return LazyComplementZone(compile_pathset(inner, ctx))
        return LazyIdentity(compile_pathset(node.pathset, ctx))
    # Atomic leaves (cross products, concatenations, stars, constants) are
    # small; materialize them eagerly and let the lazy combinators above
    # consume them through the shared arc-iteration protocol.
    return compile_rel(node, ctx)
