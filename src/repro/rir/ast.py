"""Abstract syntax of the Regular Intermediate Representation (RIR).

The RIR (paper Section 5.2, Figure 3) has three sub-languages:

* *path sets* (``PathSet``): regular sets of forwarding paths, including the
  two snapshot symbols ``PreState`` and ``PostState`` and the image operator
  ``P ▷ R``;
* *relations* (``Rel``): regular (rational) binary relations between paths,
  built from cross products, identities and the regular operations;
* *specifications* (``Spec``): equalities/inclusions between path sets and
  their boolean combinations.

All nodes are immutable dataclasses; convenience operators (``|``, ``+``,
``&``) build unions, concatenations and intersections so specs read close to
the notation in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.regex import Regex


# ----------------------------------------------------------------------
# Path sets
# ----------------------------------------------------------------------
class PathSet:
    """Base class of RIR path-set expressions."""

    __slots__ = ()

    def __or__(self, other: PathSet) -> PathSet:
        return PSUnion(self, other)

    def __add__(self, other: PathSet) -> PathSet:
        return PSConcat(self, other)

    def __and__(self, other: PathSet) -> PathSet:
        return PSIntersect(self, other)

    def star(self) -> PathSet:
        return PSStar(self)

    def complement(self) -> PathSet:
        return PSComplement(self)

    def difference(self, other: PathSet) -> PathSet:
        """``self \\ other`` — used heavily by the Figure 4 translation."""
        return PSIntersect(self, PSComplement(other))

    def image(self, rel: Rel) -> PathSet:
        """``self ▷ rel``: apply a relation to this path set."""
        return PSImage(self, rel)


@dataclass(frozen=True, slots=True)
class PSSymbol(PathSet):
    """A single one-hop path consisting of the named location."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class PSEmpty(PathSet):
    """The empty path set (RIR ``0``)."""

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True, slots=True)
class PSEpsilon(PathSet):
    """The path set containing only the zero-length path (RIR ``1``)."""

    def __str__(self) -> str:
        return "1"


@dataclass(frozen=True, slots=True)
class PSPreState(PathSet):
    """All forwarding paths of the pre-change snapshot."""

    def __str__(self) -> str:
        return "PreState"


@dataclass(frozen=True, slots=True)
class PSPostState(PathSet):
    """All forwarding paths of the post-change snapshot."""

    def __str__(self) -> str:
        return "PostState"


@dataclass(frozen=True, slots=True)
class PSRegex(PathSet):
    """A snapshot-independent regular path set given as a regex AST.

    This is the bridge from the Rela surface language: zones and modifier
    arguments are parsed into :class:`~repro.automata.regex.Regex` values and
    lifted into the RIR with this node.
    """

    regex: Regex

    def __str__(self) -> str:
        return str(self.regex)


@dataclass(frozen=True, slots=True)
class PSUnion(PathSet):
    left: PathSet
    right: PathSet

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True, slots=True)
class PSConcat(PathSet):
    left: PathSet
    right: PathSet

    def __str__(self) -> str:
        return f"({self.left} {self.right})"


@dataclass(frozen=True, slots=True)
class PSStar(PathSet):
    inner: PathSet

    def __str__(self) -> str:
        return f"({self.inner})*"


@dataclass(frozen=True, slots=True)
class PSIntersect(PathSet):
    left: PathSet
    right: PathSet

    def __str__(self) -> str:
        return f"({self.left} ∩ {self.right})"


@dataclass(frozen=True, slots=True)
class PSComplement(PathSet):
    inner: PathSet

    def __str__(self) -> str:
        return f"¬({self.inner})"


@dataclass(frozen=True, slots=True)
class PSImage(PathSet):
    """``P ▷ R``: the set of paths related by ``R`` to some path in ``P``."""

    pathset: PathSet
    rel: "Rel"

    def __str__(self) -> str:
        return f"({self.pathset} ▷ {self.rel})"


# ----------------------------------------------------------------------
# Relations
# ----------------------------------------------------------------------
class Rel:
    """Base class of RIR relation expressions."""

    __slots__ = ()

    def __or__(self, other: Rel) -> Rel:
        return RUnion(self, other)

    def __add__(self, other: Rel) -> Rel:
        return RConcat(self, other)

    def star(self) -> Rel:
        return RStar(self)

    def compose(self, other: Rel) -> Rel:
        return RCompose(self, other)


@dataclass(frozen=True, slots=True)
class RCross(Rel):
    """``P1 × P2``: relate every path of ``P1`` to every path of ``P2``."""

    left: PathSet
    right: PathSet

    def __str__(self) -> str:
        return f"({self.left} × {self.right})"


@dataclass(frozen=True, slots=True)
class RIdentity(Rel):
    """``I(P)``: relate every path of ``P`` to itself."""

    pathset: PathSet

    def __str__(self) -> str:
        return f"I({self.pathset})"


@dataclass(frozen=True, slots=True)
class REmpty(Rel):
    """The empty relation (RIR relation ``0``)."""

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True, slots=True)
class REpsilon(Rel):
    """The relation containing exactly the pair (ε, ε) (RIR relation ``1``)."""

    def __str__(self) -> str:
        return "1"


@dataclass(frozen=True, slots=True)
class RUnion(Rel):
    left: Rel
    right: Rel

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True, slots=True)
class RConcat(Rel):
    left: Rel
    right: Rel

    def __str__(self) -> str:
        return f"({self.left} {self.right})"


@dataclass(frozen=True, slots=True)
class RStar(Rel):
    inner: Rel

    def __str__(self) -> str:
        return f"({self.inner})*"


@dataclass(frozen=True, slots=True)
class RCompose(Rel):
    left: Rel
    right: Rel

    def __str__(self) -> str:
        return f"({self.left} ∘ {self.right})"


# ----------------------------------------------------------------------
# Specifications
# ----------------------------------------------------------------------
class Spec:
    """Base class of RIR specification expressions."""

    __slots__ = ()

    def __and__(self, other: Spec) -> Spec:
        return SpecAnd(self, other)

    def __or__(self, other: Spec) -> Spec:
        return SpecOr(self, other)

    def negate(self) -> Spec:
        return SpecNot(self)


@dataclass(frozen=True, slots=True)
class SpecEqual(Spec):
    """``P1 = P2``."""

    left: PathSet
    right: PathSet
    #: Optional human-readable label (e.g. the originating Rela sub-spec name).
    label: str | None = None

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True, slots=True)
class SpecSubset(Spec):
    """``P1 ⊆ P2``."""

    left: PathSet
    right: PathSet
    label: str | None = None

    def __str__(self) -> str:
        return f"{self.left} ⊆ {self.right}"


@dataclass(frozen=True, slots=True)
class SpecAnd(Spec):
    left: Spec
    right: Spec

    def __str__(self) -> str:
        return f"({self.left}) ∧ ({self.right})"


@dataclass(frozen=True, slots=True)
class SpecOr(Spec):
    left: Spec
    right: Spec

    def __str__(self) -> str:
        return f"({self.left}) ∨ ({self.right})"


@dataclass(frozen=True, slots=True)
class SpecNot(Spec):
    inner: Spec

    def __str__(self) -> str:
        return f"¬({self.inner})"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def word(symbols: list[str] | tuple[str, ...]) -> PathSet:
    """The path set containing exactly one path with the given hops."""
    result: PathSet = PSEpsilon()
    for index, name in enumerate(symbols):
        node = PSSymbol(name)
        result = node if index == 0 else PSConcat(result, node)
    return result


def union_all(parts: list[PathSet]) -> PathSet:
    """Union of arbitrarily many path sets (``0`` when the list is empty)."""
    if not parts:
        return PSEmpty()
    result = parts[0]
    for part in parts[1:]:
        result = PSUnion(result, part)
    return result
