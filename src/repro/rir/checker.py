"""Decision procedure for RIR specifications (paper Section 6.2).

Given an :class:`~repro.rir.compiler.RIRContext` (alphabet + PreState/PostState
automata) and a :class:`~repro.rir.ast.Spec`, :func:`check_spec` compiles both
sides of every equality/inclusion to automata, decides the assertion with the
language comparison routines, and aggregates witnesses so callers can render
counterexamples (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.equivalence import ComparisonResult, compare
from repro.errors import VerificationError
from repro.rir import ast
from repro.rir.compiler import RIRContext, compile_pathset

Word = tuple[str, ...]


@dataclass(slots=True)
class AssertionResult:
    """Outcome of one atomic RIR assertion (equality or inclusion)."""

    spec: ast.Spec
    holds: bool
    comparison: ComparisonResult
    label: str | None = None

    @property
    def missing(self) -> list[Word]:
        """Expected paths absent from the right-hand side."""
        return self.comparison.missing

    @property
    def unexpected(self) -> list[Word]:
        """Paths present on the right-hand side but not allowed."""
        return self.comparison.unexpected


@dataclass(slots=True)
class SpecVerdict:
    """Outcome of checking a full (possibly boolean-composed) RIR spec."""

    holds: bool
    assertions: list[AssertionResult] = field(default_factory=list)

    @property
    def violations(self) -> list[AssertionResult]:
        """The atomic assertions that failed."""
        return [result for result in self.assertions if not result.holds]

    def witnesses(self) -> tuple[list[Word], list[Word]]:
        """All (missing, unexpected) witness words across failed assertions."""
        missing: list[Word] = []
        unexpected: list[Word] = []
        for result in self.violations:
            missing.extend(result.missing)
            unexpected.extend(result.unexpected)
        return missing, unexpected


def check_spec(
    spec: ast.Spec,
    ctx: RIRContext,
    *,
    max_witnesses: int = 10,
    max_witness_length: int = 64,
) -> SpecVerdict:
    """Check an RIR specification against the snapshots in ``ctx``."""
    assertions: list[AssertionResult] = []
    holds = _check(spec, ctx, assertions, max_witnesses, max_witness_length)
    return SpecVerdict(holds=holds, assertions=assertions)


def _check(
    spec: ast.Spec,
    ctx: RIRContext,
    assertions: list[AssertionResult],
    max_witnesses: int,
    max_witness_length: int,
) -> bool:
    if isinstance(spec, (ast.SpecEqual, ast.SpecSubset)):
        left = compile_pathset(spec.left, ctx)
        right = compile_pathset(spec.right, ctx)
        comparison = compare(
            left,
            right,
            max_witnesses=max_witnesses,
            max_witness_length=max_witness_length,
        )
        if isinstance(spec, ast.SpecEqual):
            holds = comparison.equal
        else:
            holds = comparison.left_subset_of_right
        assertions.append(
            AssertionResult(spec=spec, holds=holds, comparison=comparison, label=spec.label)
        )
        return holds
    if isinstance(spec, ast.SpecAnd):
        left = _check(spec.left, ctx, assertions, max_witnesses, max_witness_length)
        right = _check(spec.right, ctx, assertions, max_witnesses, max_witness_length)
        return left and right
    if isinstance(spec, ast.SpecOr):
        left = _check(spec.left, ctx, assertions, max_witnesses, max_witness_length)
        right = _check(spec.right, ctx, assertions, max_witnesses, max_witness_length)
        return left or right
    if isinstance(spec, ast.SpecNot):
        return not _check(spec.inner, ctx, assertions, max_witnesses, max_witness_length)
    raise VerificationError(f"unknown Spec node: {spec!r}")
