"""Change-risk scoring over proven verification artifacts.

The verifier answers *holds / violated / unknown* per change; operators ask
a graded question before a change ships: how bad would it be, and how sure
are we?  This module turns verification artifacts — never heuristics — into
a :class:`RiskAssessment`: a deterministic score in ``[0, 1]``, a
:class:`RiskTier`, and the per-signal factors that produced them.

Three proven signal families (plus the cross-cutting unknowns signal):

* **blast radius** (:func:`blast_radius_signal`) — how much of the network
  a violation touches: violating-FEC count and fraction, distinct violated
  sub-specs, and the affected-*region* spread derived from the per-FEC
  verdicts plus the workload's region structure
  (:meth:`repro.workloads.backbone.Backbone.location_regions` →
  :func:`fec_region_index`);
* **contingency fragility** (:func:`fragility_signal`) — the fraction of
  k-failure contingencies that flip the verdict, seeded from the sweep's
  :attr:`~repro.verifier.contingency.SweepReport.flipped_contingencies`,
  :meth:`~repro.verifier.contingency.SweepReport.most_violating` and
  :attr:`~repro.verifier.contingency.SweepReport.expectation_mismatches`;
* **history** (:func:`history_signal`) — rolling outcome statistics a
  :class:`~repro.verifier.session.VerificationSession` accumulates across a
  stream's epochs (:meth:`~repro.verifier.session.VerificationSession.outcome_history`),
  so a change class that violated before scores hotter than a
  first-time-clean one.

Signals combine by noisy-or (``1 - Π(1 - weight·score)``), which keeps the
combined score in ``[0, 1]`` and — the property the gate's safety argument
rests on — **monotone in every input**: more violating classes, more
flipped contingencies or more unknown verdicts can never *lower* the score
or the tier.  ``unknown`` verdicts (the resilience runtime's three-valued
results) therefore raise risk, never lower it; the decision-level rule that
a fully-unknown report can at best be *hold* lives in
:mod:`repro.analytics.gate`.

Everything here is pure arithmetic over report counters: assessing a report
costs microseconds (gated in CI as <2% of sweep wall-clock,
``benchmarks/bench_gate.py``) and the same artifacts always produce the
same assessment.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import AnalyticsError
from repro.snapshots.fec import FlowEquivalenceClass
from repro.verifier.contingency import SweepReport
from repro.verifier.report import StreamReport, VerificationReport


class RiskTier(enum.StrEnum):
    """Graded risk, ordered from coolest to hottest."""

    NEGLIGIBLE = "negligible"
    LOW = "low"
    MODERATE = "moderate"
    HIGH = "high"
    CRITICAL = "critical"

    @property
    def rank(self) -> int:
        """Position in the tier order (higher = riskier)."""
        return _TIER_ORDER.index(self)

    @classmethod
    def for_score(cls, score: float) -> RiskTier:
        """The tier a combined risk score falls into (monotone in score)."""
        for floor, tier in _TIER_FLOORS:
            if score >= floor:
                return tier
        return cls.NEGLIGIBLE


_TIER_ORDER = (
    RiskTier.NEGLIGIBLE,
    RiskTier.LOW,
    RiskTier.MODERATE,
    RiskTier.HIGH,
    RiskTier.CRITICAL,
)

#: Score floors per tier, hottest first.  Scores are in [0, 1]; the floors
#: are part of the documented contract (docs/ARCHITECTURE.md) rather than
#: tuning knobs, so the gate's behaviour is predictable.
_TIER_FLOORS = (
    (0.80, RiskTier.CRITICAL),
    (0.50, RiskTier.HIGH),
    (0.25, RiskTier.MODERATE),
    (0.05, RiskTier.LOW),
)


def _clamp(value: float) -> float:
    return 0.0 if value <= 0.0 else 1.0 if value >= 1.0 else value


def _noisy_or(parts: Iterable[float]) -> float:
    """Combine ``[0, 1]`` evidence terms: any strong term dominates, every
    term only ever raises the result (the monotonicity workhorse)."""
    remaining = 1.0
    for part in parts:
        remaining *= 1.0 - _clamp(part)
    return 1.0 - remaining


@dataclass(frozen=True, slots=True)
class RiskSignal:
    """One scored signal family with its human-readable factors."""

    name: str
    #: Signal-local score in [0, 1].
    score: float
    #: Weight of this signal in the combined noisy-or (0..1].
    weight: float
    #: Human-readable contributions, deterministic order.
    factors: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "score": round(self.score, 6),
            "weight": self.weight,
            "factors": list(self.factors),
        }


@dataclass(frozen=True, slots=True)
class ChangeHistory:
    """Rolling outcome statistics of earlier changes of the same class."""

    epochs: int = 0
    violating_epochs: int = 0
    degraded_epochs: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 0 or self.violating_epochs < 0 or self.degraded_epochs < 0:
            raise AnalyticsError("history counters cannot be negative")
        if max(self.violating_epochs, self.degraded_epochs) > self.epochs:
            raise AnalyticsError("history counters cannot exceed the epoch count")

    @classmethod
    def from_stream(cls, stream: StreamReport) -> ChangeHistory:
        """History from a session's cumulative stream report."""
        return cls(
            epochs=stream.epochs,
            violating_epochs=stream.violating_epochs,
            degraded_epochs=stream.degraded_epochs,
        )

    @classmethod
    def from_counters(cls, counters: Mapping[str, int]) -> ChangeHistory:
        """History from a session's ``outcome_history()`` counter dict."""
        return cls(
            epochs=int(counters.get("epochs", 0)),
            violating_epochs=int(counters.get("violating_epochs", 0)),
            degraded_epochs=int(counters.get("degraded_epochs", 0)),
        )


@dataclass(frozen=True, slots=True)
class RiskAssessment:
    """The scored risk of one proposed change."""

    signals: tuple[RiskSignal, ...]
    #: Combined noisy-or of the weighted signal scores, in [0, 1].
    score: float
    tier: RiskTier
    #: True when any artifact carries a *proven* violation (a counterexample
    #: on the report, or a violated contingency anywhere in a sweep).
    proven_violation: bool
    #: True when nothing was proven at all: every examined class (or every
    #: contingency) ended with an unknown verdict.
    fully_unknown: bool
    #: Unknown-verdict class checks across all artifacts.
    unknown_checks: int

    @property
    def has_unknowns(self) -> bool:
        """True when any check ended unknown (the verdict is not a proof)."""
        return self.unknown_checks > 0

    def signal(self, name: str) -> RiskSignal:
        """Look up one signal by name."""
        for signal in self.signals:
            if signal.name == name:
                return signal
        raise AnalyticsError(f"no signal named {name!r} in this assessment")

    def to_dict(self) -> dict:
        return {
            "score": round(self.score, 6),
            "tier": str(self.tier),
            "proven_violation": self.proven_violation,
            "fully_unknown": self.fully_unknown,
            "unknown_checks": self.unknown_checks,
            "signals": [signal.to_dict() for signal in self.signals],
        }

    def summary(self) -> str:
        """One-line risk summary."""
        parts = ", ".join(f"{signal.name} {signal.score:.2f}" for signal in self.signals)
        return f"risk {self.tier} (score {self.score:.2f}; {parts})"


#: Signal weights in the combined noisy-or.  Blast radius and fragility are
#: full-weight (they carry proven violations); unknowns slightly less (they
#: are absence of proof, not proof of violation — but still must be able to
#: push a report toward hold on their own); history is capped low enough
#: that a clean, fully-proven change with a bad track record lands at worst
#: *conditional*, never hold (0.6 x max-signal 0.625 = 0.375 < the 0.5 hold
#: threshold).
_WEIGHTS = {
    "blast-radius": 1.0,
    "fragility": 1.0,
    "unknowns": 0.9,
    "history": 0.6,
}


def fec_region_index(
    fecs: Iterable[FlowEquivalenceClass],
    *,
    location_regions: Mapping[str, str] | None = None,
) -> dict[str, frozenset[str]]:
    """Map each FEC id to the regions its traffic touches.

    Regions come from the workload's FEC metadata (``src_region`` /
    ``dst_region``, as the scale and traffic generators stamp them), falling
    back to the ingress location resolved through a
    :meth:`~repro.workloads.backbone.Backbone.location_regions` mapping.
    FECs with no resolvable region are simply absent — blast-radius scoring
    degrades to count/fraction evidence for them, it never guesses.
    """
    index: dict[str, frozenset[str]] = {}
    for fec in fecs:
        regions = set()
        for key in ("src_region", "dst_region"):
            value = fec.metadata.get(key)
            if value:
                regions.add(value)
        if not regions and location_regions is not None and fec.ingress:
            region = location_regions.get(fec.ingress)
            if region:
                regions.add(region)
        if regions:
            index[fec.fec_id] = frozenset(regions)
    return index


def blast_radius_signal(
    report: VerificationReport,
    *,
    fec_regions: Mapping[str, frozenset[str]] | None = None,
    total_regions: int | None = None,
) -> RiskSignal:
    """How much of the network the proven violations touch.

    Evidence terms (each only ever raises the score): a floor for *any*
    proven violation, the violating-class fraction, the distinct violated
    sub-specs, and — when region metadata is available — the fraction of
    regions the violating classes' traffic touches.
    """
    weight = _WEIGHTS["blast-radius"]
    if report.total_fecs == 0:
        return RiskSignal("blast-radius", 0.0, weight, ("no flow classes examined",))
    if report.violating_fecs == 0:
        return RiskSignal("blast-radius", 0.0, weight, ("no violating classes",))

    fraction = report.violation_fraction
    branches = report.violating_branches
    branch_saturation = 1.0 - 1.0 / (1.0 + branches)
    factors = [
        f"{report.violating_fecs} of {report.total_fecs} flow classes violate",
        f"{branches} sub-spec(s) violated",
    ]

    region_fraction = 0.0
    if fec_regions and total_regions:
        affected: set[str] = set()
        for counterexample in report.counterexamples:
            affected |= fec_regions.get(counterexample.fec_id, frozenset())
        if affected:
            region_fraction = min(1.0, len(affected) / total_regions)
            factors.append(f"{len(affected)} of {total_regions} regions affected")

    score = _noisy_or(
        (0.4, 0.6 * fraction, 0.25 * branch_saturation, 0.5 * region_fraction)
    )
    return RiskSignal("blast-radius", score, weight, tuple(factors))


def unknown_signal(
    *,
    unknown: int,
    total: int,
    degraded: bool = False,
    scope: str = "checks",
) -> RiskSignal:
    """Risk from absence of proof: unknown verdicts and degraded execution.

    Raising-only by construction: any unknown check puts a floor under the
    score, the unknown fraction scales it, and a fully-unknown population
    (nothing proven at all) pins it at 0.85 — high enough that the gate can
    never call such a report better than *hold*.
    """
    weight = _WEIGHTS["unknowns"]
    if unknown <= 0:
        if degraded:
            return RiskSignal(
                "unknowns", 0.1, weight, ("degraded execution (serial fallback)",)
            )
        return RiskSignal("unknowns", 0.0, weight, (f"all {scope} proven",))
    fraction = unknown / total if total else 1.0
    score = _noisy_or((0.25, 0.6 * fraction))
    factors = [f"{unknown} of {total} {scope} ended unknown"]
    if total and unknown >= total:
        score = max(score, 0.85)
        factors.append(f"nothing proven: all {scope} ended unknown")
    return RiskSignal("unknowns", score, weight, tuple(factors))


def fragility_signal(sweep: SweepReport) -> RiskSignal:
    """How fragile the change is under the sweep's failure model.

    Seeded from the sweep's proven artifacts: the fraction of failure
    contingencies that flip to a violated verdict
    (:attr:`~repro.verifier.contingency.SweepReport.flip_fraction`), the
    worst offenders from
    :meth:`~repro.verifier.contingency.SweepReport.most_violating`, the
    unknown contingencies, and any workload-expectation mismatches.
    """
    weight = _WEIGHTS["fragility"]
    failures = sweep.failure_results
    if not failures:
        return RiskSignal("fragility", 0.0, weight, ("no failure contingencies swept",))

    flipped = sweep.flipped_contingencies
    flip_fraction = sweep.flip_fraction
    unknown = sum(1 for result in failures if result.verdict == "unknown")
    unknown_fraction = unknown / len(failures)
    mismatches = len(sweep.expectation_mismatches)

    factors = [f"{flipped} of {len(failures)} failure contingencies flip the verdict"]
    for result in sweep.most_violating(3):
        factors.append(
            f"worst: {result.contingency.contingency_id} "
            f"({result.report.violating_fecs} violating classes)"
        )
    if unknown:
        factors.append(f"{unknown} failure contingencies unproven (unknown)")
    if mismatches:
        factors.append(f"{mismatches} expectation mismatches vs the workload")

    score = _noisy_or(
        (
            0.4 if flipped else 0.0,
            0.5 * flip_fraction,
            0.3 * unknown_fraction,
            0.2 if mismatches else 0.0,
        )
    )
    return RiskSignal("fragility", score, weight, tuple(factors))


def history_signal(history: ChangeHistory) -> RiskSignal:
    """Risk carried over from earlier outcomes of the same change class."""
    weight = _WEIGHTS["history"]
    if history.epochs == 0:
        return RiskSignal("history", 0.0, weight, ("no verification history",))
    violation_rate = history.violating_epochs / history.epochs
    degraded_rate = history.degraded_epochs / history.epochs
    score = _noisy_or((0.5 * violation_rate, 0.25 * degraded_rate))
    factors = [
        f"{history.violating_epochs} of {history.epochs} past epochs violated",
    ]
    if history.degraded_epochs:
        factors.append(f"{history.degraded_epochs} past epochs ran degraded")
    return RiskSignal("history", score, weight, tuple(factors))


def _combine(signals: Iterable[RiskSignal], **flags) -> RiskAssessment:
    signals = tuple(signals)
    score = _noisy_or(signal.weight * signal.score for signal in signals)
    return RiskAssessment(
        signals=signals, score=score, tier=RiskTier.for_score(score), **flags
    )


def assess_report(
    report: VerificationReport,
    *,
    fec_regions: Mapping[str, frozenset[str]] | None = None,
    total_regions: int | None = None,
    history: ChangeHistory | None = None,
) -> RiskAssessment:
    """Assess one verification report (one ``verify`` run or stream epoch)."""
    signals = [
        blast_radius_signal(
            report, fec_regions=fec_regions, total_regions=total_regions
        ),
        unknown_signal(
            unknown=report.unknown_fecs,
            total=report.total_fecs,
            degraded=report.degraded,
            scope="class checks",
        ),
    ]
    if history is not None:
        signals.append(history_signal(history))
    return _combine(
        signals,
        proven_violation=report.violating_fecs > 0,
        fully_unknown=report.total_fecs > 0 and report.unknown_fecs >= report.total_fecs,
        unknown_checks=report.unknown_fecs,
    )


def assess_sweep(
    sweep: SweepReport,
    *,
    fec_regions: Mapping[str, frozenset[str]] | None = None,
    total_regions: int | None = None,
    history: ChangeHistory | None = None,
) -> RiskAssessment:
    """Assess a contingency sweep: baseline blast radius + k-failure fragility.

    Blast radius is scored on the healthy-network baseline contingency (the
    change as it would land; the first result when the sweep ran without a
    baseline); fragility and unknowns are scored sweep-wide.
    """
    if not sweep.results:
        raise AnalyticsError("cannot assess an empty sweep report")
    baseline = sweep.baseline_result or sweep.results[0]
    signals = [
        blast_radius_signal(
            baseline.report, fec_regions=fec_regions, total_regions=total_regions
        ),
        fragility_signal(sweep),
        unknown_signal(
            unknown=sweep.failed_checks,
            total=sweep.total_fecs,
            degraded=sweep.degraded,
            scope="class checks",
        ),
    ]
    if history is not None:
        signals.append(history_signal(history))
    return _combine(
        signals,
        proven_violation=sweep.violating_contingencies > 0,
        fully_unknown=bool(sweep.results)
        and all(result.verdict == "unknown" for result in sweep.results),
        unknown_checks=sweep.failed_checks,
    )
