"""Change-risk intelligence over verification artifacts (risk + safety gate).

The analytics layer is strictly *downstream* of the verifier: it consumes
:class:`~repro.verifier.report.VerificationReport`,
:class:`~repro.verifier.contingency.SweepReport` and
:class:`~repro.verifier.report.StreamReport` objects and never re-runs any
check.  :mod:`repro.analytics.risk` scores a change from three proven
signal families (blast radius, contingency fragility, history);
:mod:`repro.analytics.gate` maps the assessment onto the graded
``pass`` / ``conditional`` / ``hold`` / ``block`` decision the
``repro gate`` CLI exposes to CI pipelines.
"""

from repro.analytics.gate import (
    GateDecision,
    SafetyGate,
    SafetyGateDecision,
    gate_report,
    gate_sweep,
)
from repro.analytics.risk import (
    ChangeHistory,
    RiskAssessment,
    RiskSignal,
    RiskTier,
    assess_report,
    assess_sweep,
    blast_radius_signal,
    fec_region_index,
    fragility_signal,
    history_signal,
    unknown_signal,
)

__all__ = [
    "RiskTier",
    "RiskSignal",
    "RiskAssessment",
    "ChangeHistory",
    "assess_report",
    "assess_sweep",
    "blast_radius_signal",
    "fragility_signal",
    "history_signal",
    "unknown_signal",
    "fec_region_index",
    "GateDecision",
    "SafetyGate",
    "SafetyGateDecision",
    "gate_report",
    "gate_sweep",
]
