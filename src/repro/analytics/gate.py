"""Safety-gate decisions over risk assessments.

A :class:`SafetyGate` turns a :class:`~repro.analytics.risk.RiskAssessment`
into one of four graded decisions a CI pipeline can script against:

* ``pass`` — every check proven, risk below the conditional threshold;
  ship it (exit code 0);
* ``conditional`` — no violation proven, but either some checks ended
  unknown or the risk score crossed the conditional threshold; ship with
  the listed conditions satisfied (exit code 3);
* ``hold`` — no violation proven, but the risk score crossed the hold
  threshold or *nothing* was proven at all; do not ship without operator
  review (exit code 5);
* ``block`` — a violation was proven somewhere (the report, or any
  contingency of a sweep); do not ship (exit code 5).

Decision rules, in order of precedence (each can only *escalate*, mirroring
the risk layer's monotonicity):

1. a **proven violation** anywhere ⇒ ``block``, unconditionally;
2. a **fully-unknown** assessment (nothing proven) ⇒ at best ``hold`` —
   absence of proof is never treated as proof of absence;
3. otherwise the score decides: ``>= hold_at`` ⇒ ``hold``,
   ``>= conditional_at`` ⇒ ``conditional``, below ⇒ ``pass``; with any
   unknown verdicts present the decision is at least ``conditional``.

Exit codes extend the CLI's verify/stream/sweep contract: ``0``/``3`` keep
their "proven clean" / "not a full proof" meanings, and ``5`` — unused by
the other subcommands — marks the two do-not-ship decisions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analytics.risk import (
    ChangeHistory,
    RiskAssessment,
    assess_report,
    assess_sweep,
)
from repro.errors import AnalyticsError
from repro.verifier.contingency import SweepReport
from repro.verifier.report import VerificationReport


class GateDecision(enum.StrEnum):
    """Graded safety decision, ordered from most to least favourable."""

    PASS = "pass"
    CONDITIONAL = "conditional"
    HOLD = "hold"
    BLOCK = "block"

    @property
    def rank(self) -> int:
        """Position in the escalation order (higher = less favourable)."""
        return _DECISION_ORDER.index(self)

    @property
    def exit_code(self) -> int:
        """The CLI exit code encoding this decision."""
        return _EXIT_CODES[self]


_DECISION_ORDER = (
    GateDecision.PASS,
    GateDecision.CONDITIONAL,
    GateDecision.HOLD,
    GateDecision.BLOCK,
)

#: The ``repro gate`` exit-code contract: 0 = pass, 3 = conditional,
#: 5 = hold/block (2 stays the CLI-wide usage-error code).
_EXIT_CODES = {
    GateDecision.PASS: 0,
    GateDecision.CONDITIONAL: 3,
    GateDecision.HOLD: 5,
    GateDecision.BLOCK: 5,
}


@dataclass(frozen=True, slots=True)
class SafetyGateDecision:
    """One gate outcome: the decision, its assessment, and the reasons."""

    decision: GateDecision
    assessment: RiskAssessment
    #: Why the gate decided what it decided (deterministic order).
    reasons: tuple[str, ...]
    #: For ``conditional``: what must be satisfied before shipping.
    conditions: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        return self.decision.exit_code

    def to_dict(self) -> dict:
        """The machine-readable form ``repro gate --json`` emits."""
        return {
            "schema": "repro-gate/v1",
            "decision": str(self.decision),
            "exit_code": self.exit_code,
            "reasons": list(self.reasons),
            "conditions": list(self.conditions),
            "risk": self.assessment.to_dict(),
        }

    def summary(self) -> str:
        """One-line decision summary."""
        return (
            f"gate: {str(self.decision).upper()} (exit {self.exit_code}) — "
            f"{self.assessment.summary()}"
        )

    def table(self) -> str:
        """Human-readable multi-line rendering (the ``repro gate`` output)."""
        lines = [f"risk: {self.assessment.tier} (score {self.assessment.score:.2f})"]
        for signal in self.assessment.signals:
            factor_text = "; ".join(signal.factors)
            lines.append(
                f"  {signal.name:<12} {signal.score:.2f} x{signal.weight:.1f}  {factor_text}"
            )
        lines.append(f"decision: {self.decision} (exit {self.exit_code})")
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        if self.conditions:
            lines.append("conditions:")
            for condition in self.conditions:
                lines.append(f"  * {condition}")
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class SafetyGate:
    """Threshold policy mapping risk assessments to gate decisions."""

    #: Score at or above which a clean, fully-proven change still needs its
    #: conditions satisfied before shipping.
    conditional_at: float = 0.20
    #: Score at or above which the change must not ship without review.
    hold_at: float = 0.50

    def __post_init__(self) -> None:
        if not (0.0 < self.conditional_at <= self.hold_at <= 1.0):
            raise AnalyticsError(
                "gate thresholds must satisfy 0 < conditional_at <= hold_at <= 1 "
                f"(got conditional_at={self.conditional_at}, hold_at={self.hold_at})"
            )

    def decide(self, assessment: RiskAssessment) -> SafetyGateDecision:
        """Apply the decision rules (see the module docstring) in order."""
        reasons: list[str] = []
        conditions: list[str] = []
        decision = GateDecision.PASS

        if assessment.score >= self.hold_at:
            decision = GateDecision.HOLD
            reasons.append(
                f"risk score {assessment.score:.2f} at or above the hold "
                f"threshold {self.hold_at:.2f}"
            )
        elif assessment.score >= self.conditional_at:
            decision = GateDecision.CONDITIONAL
            reasons.append(
                f"risk score {assessment.score:.2f} at or above the conditional "
                f"threshold {self.conditional_at:.2f}"
            )

        if assessment.has_unknowns and decision.rank < GateDecision.CONDITIONAL.rank:
            decision = GateDecision.CONDITIONAL
            reasons.append(
                f"{assessment.unknown_checks} checks ended unknown — the verdict "
                "is not a full proof"
            )
        if assessment.fully_unknown:
            # Nothing was proven at all: absence of proof can at best hold.
            if decision.rank < GateDecision.HOLD.rank:
                decision = GateDecision.HOLD
            reasons.append("nothing proven: every check ended unknown")
        if assessment.proven_violation:
            decision = GateDecision.BLOCK
            reasons = [
                "proven violation: at least one flow class (or contingency) "
                "violates the specification"
            ]
            conditions = []

        if decision is GateDecision.CONDITIONAL:
            if assessment.has_unknowns:
                conditions.append(
                    f"re-run the {assessment.unknown_checks} unknown checks to "
                    "completion (raise --check-timeout / --max-retries)"
                )
            conditions.append("operator review of the listed risk factors")
        if decision is GateDecision.PASS:
            reasons.append(
                f"all checks proven; risk score {assessment.score:.2f} below the "
                f"conditional threshold {self.conditional_at:.2f}"
            )

        return SafetyGateDecision(
            decision=decision,
            assessment=assessment,
            reasons=tuple(reasons),
            conditions=tuple(conditions),
        )


def gate_report(
    report: VerificationReport,
    *,
    gate: SafetyGate | None = None,
    fec_regions=None,
    total_regions: int | None = None,
    history: ChangeHistory | None = None,
) -> SafetyGateDecision:
    """Assess one verification report and gate it in one call."""
    assessment = assess_report(
        report, fec_regions=fec_regions, total_regions=total_regions, history=history
    )
    return (gate or SafetyGate()).decide(assessment)


def gate_sweep(
    sweep: SweepReport,
    *,
    gate: SafetyGate | None = None,
    fec_regions=None,
    total_regions: int | None = None,
    history: ChangeHistory | None = None,
) -> SafetyGateDecision:
    """Assess a contingency sweep and gate it in one call."""
    assessment = assess_sweep(
        sweep, fec_regions=fec_regions, total_regions=total_regions, history=history
    )
    return (gate or SafetyGate()).decide(assessment)
