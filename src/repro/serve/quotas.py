"""Admission control of the verification service: queues and tenant quotas.

Two independent limits guard the daemon, both checked *before* a request
occupies an executor thread, so an overloaded service answers instantly
with HTTP 429 + ``Retry-After`` instead of queueing unboundedly:

* a **global admission limit** (``queue_limit``): requests admitted to the
  blocking-work executor at once, counting those waiting for a thread —
  the bounded request queue;
* a **per-tenant in-flight limit** (``tenant_inflight``): one noisy tenant
  saturating the queue cannot starve the others.

Session *counts* are capped per tenant as well (``max_sessions``); unlike
the admission limits this is a hard quota — exceeding it fails the create
with 429 until the tenant deletes a session.

The ledger is deliberately tiny and lock-based: admission happens on the
server's event loop and in tests' threads, and correctness (never drop,
never mangle, refuse explicitly) matters more than admission throughput.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import QuotaExceededError


class AdmissionLedger:
    """Thread-safe admission counters for one service instance."""

    def __init__(
        self,
        *,
        queue_limit: int = 32,
        tenant_inflight: int = 8,
        max_sessions: int = 16,
    ) -> None:
        if queue_limit < 1 or tenant_inflight < 1 or max_sessions < 1:
            raise ValueError("admission limits must be positive")
        self.queue_limit = queue_limit
        self.tenant_inflight = tenant_inflight
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._admitted = 0
        self._by_tenant: dict[str, int] = {}
        self._sessions: dict[str, int] = {}
        self.rejected = 0

    # ------------------------------------------------------------------
    # Request admission
    # ------------------------------------------------------------------
    def try_admit(self, tenant: str | None) -> None:
        """Admit one request or raise :class:`QuotaExceededError` (429).

        ``tenant`` is ``None`` for requests outside any tenant namespace
        (one-shot verify/sweep); they count against the global queue only.
        """
        with self._lock:
            if self._admitted >= self.queue_limit:
                self.rejected += 1
                raise QuotaExceededError(
                    f"request queue is full ({self._admitted} in flight, "
                    f"limit {self.queue_limit}); retry shortly"
                )
            if tenant is not None:
                inflight = self._by_tenant.get(tenant, 0)
                if inflight >= self.tenant_inflight:
                    self.rejected += 1
                    raise QuotaExceededError(
                        f"tenant {tenant!r} has {inflight} requests in flight "
                        f"(limit {self.tenant_inflight}); retry shortly"
                    )
                self._by_tenant[tenant] = inflight + 1
            self._admitted += 1

    def release(self, tenant: str | None) -> None:
        """Return one admission (always pairs with a successful admit)."""
        with self._lock:
            self._admitted -= 1
            if tenant is not None:
                remaining = self._by_tenant.get(tenant, 1) - 1
                if remaining <= 0:
                    self._by_tenant.pop(tenant, None)
                else:
                    self._by_tenant[tenant] = remaining

    @contextmanager
    def admission(self, tenant: str | None) -> Iterator[None]:
        """``with ledger.admission(tenant):`` — admit, run, release."""
        self.try_admit(tenant)
        try:
            yield
        finally:
            self.release(tenant)

    # ------------------------------------------------------------------
    # Session quotas
    # ------------------------------------------------------------------
    def claim_session(self, tenant: str) -> None:
        """Count one more session for ``tenant`` or refuse (hard quota)."""
        with self._lock:
            held = self._sessions.get(tenant, 0)
            if held >= self.max_sessions:
                self.rejected += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} holds {held} sessions "
                    f"(limit {self.max_sessions}); delete one first"
                )
            self._sessions[tenant] = held + 1

    def release_session(self, tenant: str) -> None:
        with self._lock:
            remaining = self._sessions.get(tenant, 1) - 1
            if remaining <= 0:
                self._sessions.pop(tenant, None)
            else:
                self._sessions[tenant] = remaining

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Counter snapshot for ``/healthz``."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "queue_limit": self.queue_limit,
                "tenant_inflight_limit": self.tenant_inflight,
                "max_sessions_per_tenant": self.max_sessions,
                "rejected": self.rejected,
            }
