"""Wire protocol of the verification service: a canonical JSON codec.

The daemon's equivalence contract — serve-vs-direct reports are
*byte-identical* — needs one unambiguous byte encoding for every report
shape the engine produces.  This module is that encoding:

* :func:`canonical_json` renders any JSON-able payload with sorted keys,
  compact separators and ASCII escapes, so two equal payloads are equal
  *bytes* (the differential suite under ``tests/serve/`` compares exactly
  these bytes).
* ``encode_report`` / ``encode_stream_report`` / ``encode_sweep_report``
  flatten the engine's report dataclasses into deterministic dictionaries.
  Wall-clock measurements are quarantined under ``"timing"`` keys —
  :func:`strip_timing` removes them recursively, leaving only fields two
  equivalent runs must agree on.
* The request decoders (`decode_snapshot`, `decode_spec`,
  `decode_options`) accept either a self-describing JSON form or a
  base64-pickle escape hatch (``{"pickle": "..."}``) for payloads with no
  JSON form, such as programmatic :class:`~repro.rela.pspec.SpecPolicy`
  objects or options carrying a fault plan.  Every decode failure raises
  :class:`~repro.errors.ProtocolError`, which the server maps to HTTP 400
  with a structured error document.

.. warning::
   Pickle payloads execute arbitrary code when loaded.  The daemon is a
   backend service for trusted callers (loopback or a private socket by
   default), not an internet-facing API; deployments that cannot trust
   their clients should front it with an authenticating proxy and restrict
   requests to the JSON forms.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Any

from repro.errors import ProtocolError, ReproError
from repro.rela.locations import Granularity
from repro.rela.parser import parse_program
from repro.rela.pspec import SpecPolicy
from repro.rela.spec import RelaSpec
from repro.snapshots.snapshot import Snapshot
from repro.verifier.contingency import SweepReport
from repro.verifier.engine import VerificationOptions
from repro.verifier.report import StreamReport, VerificationReport

#: Wire format identifiers, one per payload shape.
REPORT_FORMAT = "repro-report/v1"
STREAM_FORMAT = "repro-stream-report/v1"
SWEEP_FORMAT = "repro-sweep-report/v1"
ERROR_FORMAT = "repro-error/v1"


def canonical_json(payload: Any) -> bytes:
    """The canonical byte encoding of a JSON payload (sorted, compact, ASCII)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def strip_timing(payload: Any) -> Any:
    """A deep copy of ``payload`` with every ``"timing"`` key removed.

    Timing is honest measurement, so it can never be byte-stable across two
    runs; the differential suite compares ``canonical_json(strip_timing(a))``
    against ``canonical_json(strip_timing(b))``.
    """
    if isinstance(payload, dict):
        return {
            key: strip_timing(value)
            for key, value in payload.items()
            if key != "timing"
        }
    if isinstance(payload, list):
        return [strip_timing(item) for item in payload]
    return payload


# ----------------------------------------------------------------------
# Report encoders
# ----------------------------------------------------------------------
def _encode_paths(paths: list[tuple[str, ...]]) -> list[list[str]]:
    return [list(path) for path in paths]


def encode_report(report: VerificationReport) -> dict:
    """Flatten one :class:`VerificationReport` into its wire dictionary."""
    return {
        "format": REPORT_FORMAT,
        "holds": report.holds,
        "verdict": report.verdict,
        "total_fecs": report.total_fecs,
        "violating_fecs": report.violating_fecs,
        "unknown_fecs": report.unknown_fecs,
        "unique_checks": report.unique_checks,
        "cached_checks": report.cached_checks,
        "granularity": report.granularity.value,
        "workers": report.workers,
        "degraded": report.degraded,
        "pool_rebuilds": report.pool_rebuilds,
        "retried_checks": report.retried_checks,
        "serial_fallback": report.serial_fallback,
        "branch_violation_counts": dict(sorted(report.branch_violation_counts.items())),
        "counterexamples": [
            {
                "fec_id": cex.fec_id,
                "fec_description": cex.fec_description,
                "pre_paths": _encode_paths(cex.pre_paths),
                "post_paths": _encode_paths(cex.post_paths),
                "violations": [
                    {
                        "branch": violation.branch,
                        "expected": _encode_paths(violation.expected),
                        "observed": _encode_paths(violation.observed),
                    }
                    for violation in cex.violations
                ],
            }
            for cex in report.counterexamples
        ],
        "failed_checks": [
            {
                "fec_id": failure.fec_id,
                "fec_description": failure.fec_description,
                "reason": failure.reason,
                "detail": failure.detail,
                "attempts": failure.attempts,
            }
            for failure in report.failed_checks
        ],
        "timing": {
            "elapsed_seconds": report.elapsed_seconds,
            "setup_seconds": report.setup_seconds,
            "check_seconds": report.check_seconds,
        },
    }


def encode_stream_report(stream: StreamReport) -> dict:
    """Flatten one cumulative :class:`StreamReport` into its wire dictionary."""
    return {
        "format": STREAM_FORMAT,
        "holds": stream.holds,
        "verdict": stream.verdict,
        "epochs": stream.epochs,
        "violating_epochs": stream.violating_epochs,
        "degraded_epochs": stream.degraded_epochs,
        "unknown_epochs": stream.unknown_epochs,
        "unknown_fecs": stream.unknown_fecs,
        "total_fecs": stream.total_fecs,
        "unique_checks": stream.unique_checks,
        "cached_checks": stream.cached_checks,
        "executed_checks": stream.executed_checks,
        "retained_reports": len(stream.epoch_reports),
        "epoch_reports": [encode_report(report) for report in stream.epoch_reports],
        "timing": {"elapsed_seconds": stream.elapsed_seconds},
    }


def encode_sweep_report(sweep: SweepReport) -> dict:
    """Flatten one :class:`SweepReport` into its wire dictionary."""
    return {
        "format": SWEEP_FORMAT,
        "holds": sweep.holds,
        "verdict": sweep.verdict,
        "contingencies": sweep.contingencies,
        "violating_contingencies": sweep.violating_contingencies,
        "unknown_contingencies": sweep.unknown_contingencies,
        "flipped_contingencies": sweep.flipped_contingencies,
        "failed_checks": sweep.failed_checks,
        "naive_checks": sweep.naive_checks,
        "executed_checks": sweep.executed_checks,
        "dedup_ratio": sweep.dedup_ratio,
        "distinct_graphs": sweep.distinct_graphs,
        "expectation_mismatches": [
            result.contingency.contingency_id
            for result in sweep.expectation_mismatches
        ],
        "most_violating": [
            result.contingency.contingency_id for result in sweep.most_violating()
        ],
        "results": [
            {
                "contingency": {
                    "id": result.contingency.contingency_id,
                    "failed_links": [list(pair) for pair in result.contingency.failed_links],
                    "description": result.contingency.description,
                },
                "expected_holds": result.expected_holds,
                "report": encode_report(result.report),
                "timing": {"derive_seconds": result.derive_seconds},
            }
            for result in sweep.results
        ],
        "timing": {
            "elapsed_seconds": sweep.elapsed_seconds,
            "checkpoint_seconds": sweep.checkpoint_seconds,
        },
    }


def encode_error(code: str, message: str) -> dict:
    """The structured error document every non-2xx response carries."""
    return {"format": ERROR_FORMAT, "error": {"code": code, "message": message}}


# ----------------------------------------------------------------------
# Request decoders
# ----------------------------------------------------------------------
def pickle_b64(obj: Any) -> dict:
    """Encode an arbitrary engine object as a ``{"pickle": ...}`` payload."""
    return {"pickle": base64.b64encode(pickle.dumps(obj)).decode("ascii")}


def _unpickle_b64(text: Any, *, what: str) -> Any:
    if not isinstance(text, str):
        raise ProtocolError(f"{what}: 'pickle' payload must be a base64 string")
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii"), validate=True))
    except Exception as error:  # noqa: BLE001 - any decode failure is a client error
        raise ProtocolError(f"{what}: undecodable pickle payload ({error})") from error


def _require_mapping(obj: Any, what: str) -> dict:
    if not isinstance(obj, dict):
        raise ProtocolError(f"{what} must be a JSON object, got {type(obj).__name__}")
    return obj


def decode_snapshot(obj: Any, *, what: str = "snapshot") -> Snapshot:
    """Decode a snapshot payload: ``{"data": <snapshot dict>}`` or pickle."""
    body = _require_mapping(obj, what)
    if "pickle" in body:
        snapshot = _unpickle_b64(body["pickle"], what=what)
        if not isinstance(snapshot, Snapshot):
            raise ProtocolError(f"{what}: pickle payload is not a Snapshot")
        return snapshot
    if "data" in body:
        try:
            return Snapshot.from_dict(_require_mapping(body["data"], f"{what}.data"))
        except ProtocolError:
            raise
        except ReproError as error:
            raise ProtocolError(f"{what}: {error}") from error
    raise ProtocolError(f"{what} needs a 'data' or 'pickle' field")


def decode_spec(obj: Any, *, what: str = "spec") -> RelaSpec | SpecPolicy:
    """Decode a spec payload: a textual Rela program or a pickled object.

    The JSON form is ``{"program": "<rela source>", "name": "change"}``;
    the pickle form carries :class:`RelaSpec`/:class:`SpecPolicy` instances
    that have no textual syntax (programmatic policies, generated specs).
    """
    body = _require_mapping(obj, what)
    if "pickle" in body:
        spec = _unpickle_b64(body["pickle"], what=what)
        if not isinstance(spec, (RelaSpec, SpecPolicy)):
            raise ProtocolError(f"{what}: pickle payload is not a RelaSpec/SpecPolicy")
        return spec
    if "program" in body:
        if not isinstance(body["program"], str):
            raise ProtocolError(f"{what}.program must be a string")
        name = body.get("name", "change")
        if not isinstance(name, str):
            raise ProtocolError(f"{what}.name must be a string")
        try:
            return parse_program(body["program"]).spec(name)
        except ReproError as error:
            raise ProtocolError(f"{what}: {error}") from error
    raise ProtocolError(f"{what} needs a 'program' or 'pickle' field")


#: Options fields settable through the JSON form.  ``fault_plan`` is
#: deliberately absent: fault schedules are harness objects with no JSON
#: form and ride the pickle escape hatch (``pickle_b64(options)``).
_OPTION_FIELDS = frozenset(
    {
        "granularity",
        "max_witnesses",
        "max_paths",
        "max_witness_length",
        "workers",
        "collect_counterexamples",
        "fast_path_identical_graphs",
        "memoize_fec_checks",
        "lazy_spec_compilation",
        "check_timeout",
        "max_retries",
        "retry_backoff",
        "allow_degraded",
        "max_pool_rebuilds",
    }
)


def decode_options(obj: Any, *, what: str = "options") -> VerificationOptions:
    """Decode engine options: a field dictionary, a pickle, or ``None``."""
    if obj is None:
        return VerificationOptions()
    body = _require_mapping(obj, what)
    if "pickle" in body:
        options = _unpickle_b64(body["pickle"], what=what)
        if not isinstance(options, VerificationOptions):
            raise ProtocolError(f"{what}: pickle payload is not VerificationOptions")
        return options
    unknown = set(body) - _OPTION_FIELDS
    if unknown:
        raise ProtocolError(f"{what} has unknown fields: {', '.join(sorted(unknown))}")
    kwargs = dict(body)
    if "granularity" in kwargs:
        try:
            kwargs["granularity"] = Granularity(kwargs["granularity"])
        except ValueError as error:
            raise ProtocolError(f"{what}.granularity: {error}") from error
    try:
        return VerificationOptions(**kwargs)
    except TypeError as error:
        raise ProtocolError(f"{what}: {error}") from error


def decode_budget(body: dict, field: str) -> int | None:
    """Decode an optional non-negative integer budget field."""
    value = body.get(field)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ProtocolError(f"{field} must be a non-negative integer")
    return value
