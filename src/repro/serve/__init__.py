"""``repro serve`` — the verification daemon and its building blocks.

Layering (each importable on its own):

* :mod:`repro.serve.protocol` — canonical JSON codec for reports, errors
  and request payloads (the byte-equivalence contract lives here);
* :mod:`repro.serve.pool` — :class:`PoolManager`, the shared worker pool
  reused across requests (the per-call pool in ``runtime.execute_checks``
  is what this lifts out);
* :mod:`repro.serve.quotas` — :class:`AdmissionLedger`, bounded request
  queue + per-tenant limits behind HTTP 429;
* :mod:`repro.serve.host` — :class:`SessionHost`, the transport-free
  request router over named per-tenant sessions;
* :mod:`repro.serve.server` — the asyncio HTTP/1.1 front end with
  graceful drain;
* :mod:`repro.serve.client` — a stdlib convenience client.
"""

from repro.serve.client import ServeClient, ServeResponse
from repro.serve.host import HostedSession, SessionHost
from repro.serve.pool import PoolManager
from repro.serve.protocol import (
    canonical_json,
    encode_report,
    encode_stream_report,
    encode_sweep_report,
    pickle_b64,
    strip_timing,
)
from repro.serve.quotas import AdmissionLedger
from repro.serve.server import EmbeddedServer, ServeConfig, VerificationServer

__all__ = [
    "AdmissionLedger",
    "EmbeddedServer",
    "HostedSession",
    "PoolManager",
    "ServeClient",
    "ServeConfig",
    "ServeResponse",
    "SessionHost",
    "VerificationServer",
    "canonical_json",
    "encode_report",
    "encode_stream_report",
    "encode_sweep_report",
    "pickle_b64",
    "strip_timing",
]
