"""A minimal stdlib client for the verification service.

Wraps :mod:`http.client` with the service's conventions: canonical-JSON
request bodies, JSON responses, one connection per request (the server
answers ``Connection: close``).  Used by the differential test suite, the
throughput benchmark and the docs examples; external callers can use any
HTTP client — this one just removes boilerplate.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any

from repro.serve import protocol


class ServeResponse:
    """One response: status, decoded payload, selected headers."""

    def __init__(self, status: int, payload: Any, headers: dict[str, str]) -> None:
        self.status = status
        self.payload = payload
        self.headers = headers

    @property
    def retry_after(self) -> int | None:
        value = self.headers.get("retry-after")
        return int(value) if value is not None else None

    def raise_for_status(self) -> "ServeResponse":
        if self.status >= 400:
            error = (self.payload or {}).get("error", {})
            raise RuntimeError(
                f"HTTP {self.status}: {error.get('code', '?')}: "
                f"{error.get('message', '(no message)')}"
            )
        return self


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket (for ``--socket`` daemons)."""

    def __init__(self, path: str, timeout: float) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:  # pragma: no cover - exercised via --socket only
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(self.timeout)
        self.sock.connect(self._path)


class ServeClient:
    """Talk to one daemon at ``http://host:port`` or a unix socket path."""

    def __init__(
        self,
        base_url: str | None = None,
        *,
        socket_path: str | None = None,
        timeout: float = 300.0,
    ) -> None:
        if (base_url is None) == (socket_path is None):
            raise ValueError("pass exactly one of base_url or socket_path")
        self.timeout = timeout
        self.socket_path = socket_path
        if base_url is not None:
            trimmed = base_url.removeprefix("http://").rstrip("/")
            host, _, port = trimmed.partition(":")
            self.host = host
            self.port = int(port) if port else 80
        else:
            self.host = None
            self.port = None

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> ServeResponse:
        if self.socket_path is not None:
            connection: http.client.HTTPConnection = _UnixHTTPConnection(
                self.socket_path, self.timeout
            )
        else:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        body = protocol.canonical_json(payload) if payload is not None else None
        headers = {"Content-Type": "application/json"} if body is not None else {}
        try:
            connection.request(method, path, body=body, headers=headers)
            raw = connection.getresponse()
            data = raw.read()
            response_headers = {name.lower(): value for name, value in raw.getheaders()}
            decoded = json.loads(data.decode("utf-8")) if data else None
            return ServeResponse(raw.status, decoded, response_headers)
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Convenience wrappers, one per endpoint
    # ------------------------------------------------------------------
    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def list_sessions(self) -> ServeResponse:
        return self.request("GET", "/v1/sessions")

    def create_session(self, tenant: str, name: str, body: dict) -> ServeResponse:
        return self.request("POST", f"/v1/sessions/{tenant}/{name}", body)

    def advance(self, tenant: str, name: str, body: dict) -> ServeResponse:
        return self.request("POST", f"/v1/sessions/{tenant}/{name}/advance", body)

    def delete_session(self, tenant: str, name: str) -> ServeResponse:
        return self.request("DELETE", f"/v1/sessions/{tenant}/{name}")

    def verify(self, body: dict) -> ServeResponse:
        return self.request("POST", "/v1/verify", body)

    def sweep(self, body: dict) -> ServeResponse:
        return self.request("POST", "/v1/sweep", body)
