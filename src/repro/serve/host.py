"""Transport-independent request handling of the verification service.

:class:`SessionHost` is the service *behind* the HTTP layer: a thread-safe
registry of named per-tenant :class:`~repro.verifier.session.VerificationSession`
objects plus the stateless one-shot endpoints, speaking request/response
dictionaries.  The asyncio server (:mod:`repro.serve.server`) parses HTTP
and calls :meth:`SessionHost.handle_json` on an executor thread; the
differential test suite drives a *second* host in-process with the very
same request bytes and asserts byte-identical responses — the daemon must
add transport, never semantics.

Per-session guarantees:

* **Ordered, exclusive epochs** — each hosted session has its own lock;
  concurrent advances on one session serialize, advances on different
  sessions (or tenants) proceed in parallel.
* **Spec interning by digest** — a client re-sending the same spec (same
  program text, same pickled policy) gets the same registered instance,
  so recurring specs hit the session's compiled contexts and verdict
  cache exactly as a long-lived in-process caller reusing one instance
  would.
* **Durability** — with a state directory configured, sessions save
  through the existing :class:`~repro.persist.statestore.StateStore` on
  drain (and on demand), and a restarted daemon reloads them warm:
  adopted verdicts surface as ``cached_checks`` in the first reports of
  the new process.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    DegradedExecutionError,
    PersistenceError,
    ProtocolError,
    QuotaExceededError,
    ReproError,
    SessionExistsError,
    SessionNotFoundError,
    ServeError,
)
from repro.persist.statestore import StateStore
from repro.rela.locations import Granularity
from repro.rela.pspec import SpecPolicy
from repro.rela.spec import RelaSpec
from repro.persist.digest import stable_digest
from repro.serve import protocol
from repro.serve.pool import PoolManager
from repro.serve.quotas import AdmissionLedger
from repro.verifier import k_link_failures, single_link_failures
from repro.verifier.session import VerificationSession
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.contingencies import (
    decommission_sweep_scenario,
    drain_sweep_scenario,
    interconnect_maintenance_sets,
    refactor_sweep_scenario,
)

#: Tenant and session names are path segments and state-directory entries:
#: one conservative shape serves both (no traversal, no hidden files).
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_SWEEP_SCENARIOS = {
    "drain": drain_sweep_scenario,
    "refactor": refactor_sweep_scenario,
    "decommission": decommission_sweep_scenario,
}

#: State files a daemon writes under ``state_dir/<tenant>/``.
_STATE_SUFFIX = ".state"


@dataclass
class HostedSession:
    """One named tenant session plus its service-side bookkeeping."""

    tenant: str
    name: str
    session: VerificationSession
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Digest-interned spec instances this session has seen (see module doc).
    specs: dict[str, RelaSpec | SpecPolicy] = field(default_factory=dict)

    def intern_spec(self, spec: RelaSpec | SpecPolicy) -> RelaSpec | SpecPolicy:
        digest = stable_digest(spec)
        held = self.specs.get(digest)
        if held is None:
            self.specs[digest] = spec
            return spec
        return held

    def info(self) -> dict:
        session = self.session
        return {
            "tenant": self.tenant,
            "name": self.name,
            "epochs": session.epochs,
            "cached_verdicts": session.cached_verdicts,
            "compiled_contexts": session.compiled_contexts,
            "graphs": len(session.store),
            "current_snapshot": session.current.name,
            "graph_budget": session.graph_budget,
            "context_budget": session.context_budget,
        }


def status_of(error: ReproError) -> int:
    """Map a service-layer exception to its HTTP status."""
    if isinstance(error, QuotaExceededError):
        return 429
    if isinstance(error, SessionNotFoundError):
        return 404
    if isinstance(error, SessionExistsError):
        return 409
    if isinstance(error, ProtocolError):
        return 400
    if isinstance(error, ServeError):
        return 503  # service-side refusal (draining)
    if isinstance(error, (DegradedExecutionError, PersistenceError)):
        return 500
    return 400  # other library errors are malformed client inputs


def _error_code(error: ReproError) -> str:
    return {
        QuotaExceededError: "quota-exceeded",
        SessionNotFoundError: "session-not-found",
        SessionExistsError: "session-exists",
        ProtocolError: "bad-request",
        DegradedExecutionError: "degraded-execution",
        PersistenceError: "persistence-error",
    }.get(type(error), "unavailable" if isinstance(error, ServeError) else "bad-request")


class SessionHost:
    """The verification service's request handler (no transport attached)."""

    def __init__(
        self,
        *,
        pool: PoolManager | None = None,
        state_dir: str | Path | None = None,
        ledger: AdmissionLedger | None = None,
    ) -> None:
        self.pool = pool
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.ledger = ledger or AdmissionLedger()
        self.draining = False
        self._lock = threading.RLock()
        self._sessions: dict[tuple[str, str], HostedSession] = {}
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self._load_state_dir()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def handle_json(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        """Serve one request; always returns ``(status, payload)``.

        Every failure — malformed body, unknown route, quota refusal,
        engine error — becomes a structured :func:`protocol.encode_error`
        document; nothing propagates (the HTTP layer never sees a
        traceback, the lifecycle suite pins this).
        """
        try:
            decoded = None
            if body:
                try:
                    decoded = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    raise ProtocolError(f"request body is not valid JSON: {error}")
                if not isinstance(decoded, dict):
                    raise ProtocolError("request body must be a JSON object")
            return self.handle(method, path, decoded)
        except ReproError as error:
            return status_of(error), protocol.encode_error(_error_code(error), str(error))
        except Exception as error:  # noqa: BLE001 - the 500 of last resort
            return 500, protocol.encode_error(
                "internal-error", f"{type(error).__name__}: {error}"
            )

    def handle(self, method: str, path: str, body: dict | None) -> tuple[int, dict]:
        """Route one decoded request (raises ``ReproError`` on failure)."""
        parts = [part for part in path.split("/") if part]
        if path == "/healthz":
            self._expect(method, "GET", path)
            return 200, self.health()
        if parts[:2] == ["v1", "sessions"] and len(parts) == 2:
            self._expect(method, "GET", path)
            return 200, self.list_sessions()
        if parts[:2] == ["v1", "sessions"] and len(parts) in (4, 5):
            tenant, name = self._names(parts[2], parts[3])
            if len(parts) == 5 and parts[4] == "advance":
                self._expect(method, "POST", path)
                self._refuse_if_draining()
                return 200, self.advance(tenant, name, self._require_body(body))
            if len(parts) == 4:
                if method == "POST":
                    self._refuse_if_draining()
                    return 200, self.create(tenant, name, self._require_body(body))
                if method == "DELETE":
                    self._refuse_if_draining()
                    return 200, self.delete(tenant, name)
                raise ProtocolError(f"method {method} not allowed on {path}")
        if parts == ["v1", "verify"]:
            self._expect(method, "POST", path)
            self._refuse_if_draining()
            return 200, self.verify(self._require_body(body))
        if parts == ["v1", "sweep"]:
            self._expect(method, "POST", path)
            self._refuse_if_draining()
            return 200, self.sweep(self._require_body(body))
        raise SessionNotFoundError(f"no such endpoint: {method} {path}")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        with self._lock:
            sessions = len(self._sessions)
        return {
            "status": "draining" if self.draining else "ok",
            "sessions": sessions,
            "pool": self.pool.stats() if self.pool is not None else None,
            "admission": self.ledger.snapshot(),
            "state_dir": str(self.state_dir) if self.state_dir is not None else None,
        }

    def list_sessions(self) -> dict:
        with self._lock:
            hosted = sorted(self._sessions.values(), key=lambda h: (h.tenant, h.name))
            return {"sessions": [entry.info() for entry in hosted]}

    def create(self, tenant: str, name: str, body: dict) -> dict:
        allowed = {
            "initial",
            "spec",
            "options",
            "graph_budget",
            "context_budget",
            "report_history",
        }
        unknown = set(body) - allowed
        if unknown:
            raise ProtocolError(f"unknown fields: {', '.join(sorted(unknown))}")
        if "initial" not in body:
            raise ProtocolError("session create needs an 'initial' snapshot")
        initial = protocol.decode_snapshot(body["initial"], what="initial")
        spec = (
            protocol.decode_spec(body["spec"]) if body.get("spec") is not None else None
        )
        options = protocol.decode_options(body.get("options"))
        session = VerificationSession(
            initial,
            spec,
            options=options,
            graph_budget=protocol.decode_budget(body, "graph_budget"),
            context_budget=protocol.decode_budget(body, "context_budget"),
            report_history=protocol.decode_budget(body, "report_history"),
        )
        if self.pool is not None:
            session.runner = self.pool.runner
        hosted = HostedSession(tenant=tenant, name=name, session=session)
        if spec is not None:
            hosted.specs[stable_digest(spec)] = spec
        with self._lock:
            key = (tenant, name)
            if key in self._sessions:
                raise SessionExistsError(f"session {tenant}/{name} already exists")
            self.ledger.claim_session(tenant)
            self._sessions[key] = hosted
        return {"created": True, "session": hosted.info()}

    def advance(self, tenant: str, name: str, body: dict) -> dict:
        unknown = set(body) - {"snapshot", "spec"}
        if unknown:
            raise ProtocolError(f"unknown fields: {', '.join(sorted(unknown))}")
        if "snapshot" not in body:
            raise ProtocolError("advance needs a 'snapshot'")
        hosted = self._hosted(tenant, name)
        snapshot = protocol.decode_snapshot(body["snapshot"], what="snapshot")
        spec = (
            protocol.decode_spec(body["spec"]) if body.get("spec") is not None else None
        )
        with hosted.lock:
            if spec is not None:
                spec = hosted.intern_spec(spec)
            try:
                report = hosted.session.advance(snapshot, spec)
            except ValueError as error:
                # advance() without a spec on a default-less session
                raise ProtocolError(str(error)) from error
            epoch = hosted.session.epochs
        return {
            "tenant": tenant,
            "name": name,
            "epoch": epoch,
            "report": protocol.encode_report(report),
        }

    def delete(self, tenant: str, name: str) -> dict:
        with self._lock:
            hosted = self._sessions.pop((tenant, name), None)
            if hosted is None:
                raise SessionNotFoundError(f"no session {tenant}/{name}")
            self.ledger.release_session(tenant)
        if self.state_dir is not None:
            state_path = self._state_path(tenant, name)
            if state_path.exists():
                state_path.unlink()
        return {"deleted": True, "tenant": tenant, "name": name}

    def verify(self, body: dict) -> dict:
        unknown = set(body) - {"pre", "post", "spec", "options"}
        if unknown:
            raise ProtocolError(f"unknown fields: {', '.join(sorted(unknown))}")
        for needed in ("pre", "post", "spec"):
            if needed not in body:
                raise ProtocolError(f"verify needs a {needed!r} field")
        pre = protocol.decode_snapshot(body["pre"], what="pre")
        post = protocol.decode_snapshot(body["post"], what="post")
        spec = protocol.decode_spec(body["spec"])
        options = protocol.decode_options(body.get("options"))
        # One-shot verification is a session of length 1, exactly as
        # verify_change() builds it — with the shared pool plugged in.
        session = VerificationSession(pre, spec, options=options)
        if self.pool is not None:
            session.runner = self.pool.runner
        report = session.advance(post)
        return {"report": protocol.encode_report(report)}

    def sweep(self, body: dict) -> dict:
        allowed = {
            "scenario",
            "buggy",
            "fecs",
            "regions",
            "routers_per_group",
            "parallel_links",
            "prefixes_per_region",
            "granularity",
            "seed",
            "failures",
            "k",
            "limit",
            "options",
        }
        unknown = set(body) - allowed
        if unknown:
            raise ProtocolError(f"unknown fields: {', '.join(sorted(unknown))}")
        scenario_name = body.get("scenario", "drain")
        if scenario_name not in _SWEEP_SCENARIOS:
            raise ProtocolError(
                f"unknown scenario {scenario_name!r} "
                f"(choose from {', '.join(sorted(_SWEEP_SCENARIOS))})"
            )
        try:
            granularity = Granularity(body.get("granularity", "group"))
        except ValueError as error:
            raise ProtocolError(f"granularity: {error}") from error
        params = BackboneParams(
            regions=int(body.get("regions", 6)),
            routers_per_group=int(body.get("routers_per_group", 2)),
            parallel_links=int(body.get("parallel_links", 2)),
            prefixes_per_region=int(body.get("prefixes_per_region", 2)),
            seed=int(body.get("seed", 59)),
        )
        backbone = generate_backbone(params)
        scenario = _SWEEP_SCENARIOS[scenario_name](
            backbone,
            num_fecs=int(body.get("fecs", 2000)),
            granularity=granularity,
            buggy=bool(body.get("buggy", False)),
            seed=int(body.get("seed", 59)),
        )
        failures = body.get("failures", "single")
        if failures == "single":
            contingencies = single_link_failures(backbone.topology)
        elif failures == "k":
            contingencies = k_link_failures(
                backbone.topology,
                int(body.get("k", 2)),
                limit=body.get("limit"),
            )
        elif failures == "maintenance":
            contingencies = interconnect_maintenance_sets(backbone)
        else:
            raise ProtocolError(
                f"unknown failure model {failures!r} (single, k, or maintenance)"
            )
        options = protocol.decode_options(body.get("options"))
        if "granularity" not in (body.get("options") or {}):
            options.granularity = scenario.granularity
        sweep = scenario.sweep(contingencies, options=options)
        if self.pool is not None:
            sweep.runner = self.pool.runner
        return {"sweep": protocol.encode_sweep_report(sweep.run())}

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def save_all(self) -> int:
        """Persist every hosted session to the state directory (drain path)."""
        if self.state_dir is None:
            return 0
        with self._lock:
            hosted = list(self._sessions.values())
        saved = 0
        for entry in hosted:
            path = self._state_path(entry.tenant, entry.name)
            path.parent.mkdir(parents=True, exist_ok=True)
            with entry.lock:
                StateStore(path).save_session(entry.session)
            saved += 1
        return saved

    def _load_state_dir(self) -> None:
        """Reload every saved session; a restarted daemon resumes warm."""
        for state_path in sorted(self.state_dir.glob(f"*/*{_STATE_SUFFIX}")):
            tenant = state_path.parent.name
            name = state_path.name[: -len(_STATE_SUFFIX)]
            if not (_NAME_RE.match(tenant) and _NAME_RE.match(name)):
                continue
            session = StateStore(state_path).load_session()
            if self.pool is not None:
                session.runner = self.pool.runner
            self.ledger.claim_session(tenant)
            self._sessions[(tenant, name)] = HostedSession(
                tenant=tenant, name=name, session=session
            )

    def _state_path(self, tenant: str, name: str) -> Path:
        assert self.state_dir is not None
        return self.state_dir / tenant / f"{name}{_STATE_SUFFIX}"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _hosted(self, tenant: str, name: str) -> HostedSession:
        with self._lock:
            hosted = self._sessions.get((tenant, name))
        if hosted is None:
            raise SessionNotFoundError(f"no session {tenant}/{name}")
        return hosted

    @staticmethod
    def _names(tenant: str, name: str) -> tuple[str, str]:
        for label, value in (("tenant", tenant), ("session name", name)):
            if not _NAME_RE.match(value):
                raise ProtocolError(
                    f"{label} {value!r} is invalid (letters, digits, '._-', "
                    "max 64 chars, no leading punctuation)"
                )
        return tenant, name

    @staticmethod
    def _expect(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise ProtocolError(f"method {method} not allowed on {path}")

    @staticmethod
    def _require_body(body: dict | None) -> dict:
        if body is None:
            raise ProtocolError("request needs a JSON body")
        return body

    def _refuse_if_draining(self) -> None:
        if self.draining:
            raise ServeError("service is draining; retry against a new instance")

    # Tenant extraction for admission control (the HTTP layer calls this
    # before occupying an executor thread).
    @staticmethod
    def tenant_of(path: str) -> str | None:
        parts = [part for part in path.split("/") if part]
        if parts[:2] == ["v1", "sessions"] and len(parts) >= 4:
            return parts[2]
        return None
