"""The asyncio HTTP front end of the verification service.

A deliberately small, dependency-free HTTP/1.1 server: parse one request,
admit it (or answer 429 + ``Retry-After`` instantly), run the blocking
verification work on a thread pool via :class:`~repro.serve.host.SessionHost`,
write one JSON response, close.  ``Connection: close`` everywhere — the
expensive part of a request is verification, not connection setup, and
one-shot connections keep drain semantics trivial.

Lifecycle:

* the process prints ``serving on http://host:port`` (or the socket path)
  once the listener is bound, so wrappers can parse the chosen port when
  started with ``--port 0``;
* SIGTERM/SIGINT triggers a **graceful drain**: the listener closes, new
  requests that still arrive on open connections get 503, every in-flight
  request runs to completion, hosted sessions flush to the state
  directory, the shared worker pool shuts down, and the process exits 0.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.errors import QuotaExceededError
from repro.serve import protocol
from repro.serve.host import SessionHost
from repro.serve.pool import PoolManager
from repro.serve.quotas import AdmissionLedger

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Header block cap — far beyond anything the JSON API needs.
_MAX_HEADER_BYTES = 16 * 1024


@dataclass
class ServeConfig:
    """Everything ``repro serve`` is configured with."""

    host: str = "127.0.0.1"
    port: int = 0
    socket: str | None = None
    state_dir: str | None = None
    pool_workers: int = 2
    exec_threads: int = 8
    queue_limit: int = 32
    tenant_inflight: int = 8
    max_sessions_per_tenant: int = 16
    max_body: int = 64 * 1024 * 1024
    #: Seconds clients should wait before retrying a 429/503.
    retry_after: int = 1


class VerificationServer:
    """One daemon instance: listener + executor + shared pool + host."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.ledger = AdmissionLedger(
            queue_limit=self.config.queue_limit,
            tenant_inflight=self.config.tenant_inflight,
            max_sessions=self.config.max_sessions_per_tenant,
        )
        # The tentpole: ONE pool for the whole daemon, reused across
        # requests.  pool_workers < 2 means serial in-process execution.
        self.pool = (
            PoolManager(self.config.pool_workers)
            if self.config.pool_workers >= 2
            else None
        )
        self.host = SessionHost(
            pool=self.pool,
            state_dir=self.config.state_dir,
            ledger=self.ledger,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.exec_threads),
            thread_name_prefix="repro-serve",
        )
        self._inflight: set[asyncio.Task] = set()
        self._drain = asyncio.Event()
        self.bound_port: int | None = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inflight.add(task)
        try:
            await self._handle_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            if task is not None:
                self._inflight.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            await self._respond(
                writer, 400, protocol.encode_error("bad-request", "header block too large")
            )
            return
        try:
            method, path, headers = self._parse_head(head)
        except ValueError as error:
            await self._respond(
                writer, 400, protocol.encode_error("bad-request", str(error))
            )
            return
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await self._respond(
                writer, 400, protocol.encode_error("bad-request", "bad Content-Length")
            )
            return
        if length > self.config.max_body:
            # Oversized is a *protocol* failure per the API contract: 400
            # with a structured document, connection closed unread.
            await self._respond(
                writer,
                400,
                protocol.encode_error(
                    "bad-request",
                    f"body of {length} bytes exceeds the "
                    f"{self.config.max_body}-byte limit",
                ),
            )
            return
        body = await reader.readexactly(length) if length else b""

        if path == "/healthz":
            # Health stays answerable without admission, even mid-drain.
            status, payload = self.host.handle_json(method, path, body)
            await self._respond(writer, status, payload)
            return

        tenant = self.host.tenant_of(path)
        try:
            self.ledger.try_admit(tenant)
        except QuotaExceededError as error:
            await self._respond(
                writer,
                429,
                protocol.encode_error("quota-exceeded", str(error)),
                retry_after=self.config.retry_after,
            )
            return
        try:
            loop = asyncio.get_running_loop()
            status, payload = await loop.run_in_executor(
                self._executor, self.host.handle_json, method, path, body
            )
        finally:
            self.ledger.release(tenant)
        retry = self.config.retry_after if status in (429, 503) else None
        await self._respond(writer, status, payload, retry_after=retry)

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
        try:
            text = head.decode("ascii")
        except UnicodeDecodeError:
            raise ValueError("request head is not ASCII")
        lines = text.split("\r\n")
        request = lines[0].split(" ")
        if len(request) != 3 or not request[2].startswith("HTTP/1."):
            raise ValueError(f"malformed request line: {lines[0]!r}")
        method, target, _version = request
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        retry_after: int | None = None,
    ) -> None:
        body = protocol.canonical_json(payload)
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def run(self) -> int:
        """Serve until drained; returns the process exit code (0)."""
        loop = asyncio.get_running_loop()
        limit = min(self.config.max_body + _MAX_HEADER_BYTES, 2**24)
        if self.config.socket:
            socket_path = Path(self.config.socket)
            socket_path.parent.mkdir(parents=True, exist_ok=True)
            if socket_path.exists():
                socket_path.unlink()
            server = await asyncio.start_unix_server(
                self._handle_connection, path=str(socket_path), limit=limit
            )
            endpoint = f"unix:{socket_path}"
        else:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=limit,
            )
            self.bound_port = server.sockets[0].getsockname()[1]
            endpoint = f"http://{self.config.host}:{self.bound_port}"
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._begin_drain)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or unsupported platform
        print(f"serving on {endpoint}", flush=True)
        async with server:
            await self._drain.wait()
            # Drain: stop accepting, let in-flight requests finish.
            server.close()
            await server.wait_closed()
            pending = {task for task in self._inflight if task is not asyncio.current_task()}
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        saved = self.host.save_all()
        if saved:
            print(f"drained: saved {saved} session(s)", flush=True)
        else:
            print("drained", flush=True)
        self._executor.shutdown(wait=True)
        if self.pool is not None:
            self.pool.shutdown()
        if self.config.socket:
            Path(self.config.socket).unlink(missing_ok=True)
        return 0

    def _begin_drain(self) -> None:
        self.host.draining = True
        self._drain.set()

    def serve_forever(self) -> int:
        """Blocking entry point used by ``repro serve``."""
        return asyncio.run(self.run())

    # ------------------------------------------------------------------
    # Embedding (docs examples, in-process tests)
    # ------------------------------------------------------------------
    def start_in_thread(self) -> "EmbeddedServer":
        """Run this server on a background thread; returns a stop handle."""
        started = threading.Event()
        handle = EmbeddedServer(self, started)
        handle.thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("embedded server failed to start")
        return handle


class EmbeddedServer:
    """A :class:`VerificationServer` running on a daemon thread."""

    def __init__(self, server: VerificationServer, started: threading.Event) -> None:
        self.server = server
        self._started = started
        self._loop: asyncio.AbstractEventLoop | None = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def _serve() -> None:
            serve_task = asyncio.ensure_future(self.server.run())
            # Signal readiness once the port is bound (run() prints after
            # binding, but we poll the attribute to avoid capturing stdout).
            while self.server.bound_port is None and self.server.config.socket is None:
                if serve_task.done():
                    serve_task.result()  # surface the startup failure
                    return
                await asyncio.sleep(0.01)
            self._started.set()
            await serve_task

        try:
            loop.run_until_complete(_serve())
        finally:
            loop.close()

    @property
    def base_url(self) -> str:
        port = self.server.bound_port
        if port is None:
            raise RuntimeError("server is not listening on a TCP port")
        return f"http://{self.server.config.host}:{port}"

    def stop(self) -> None:
        """Drain and wait for the server thread to exit."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server._begin_drain)
        self.thread.join(timeout=60)


def main(config: ServeConfig | None = None) -> int:
    """Run a daemon in the foreground (the ``repro serve`` entry point)."""
    try:
        return VerificationServer(config).serve_forever()
    except KeyboardInterrupt:
        # Signal handler could not be installed (rare); treat as a drain.
        return 0


if __name__ == "__main__":  # pragma: no cover - convenience launcher
    sys.exit(main())
