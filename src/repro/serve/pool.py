"""The shared worker pool of the verification service.

The library engine builds a fresh ``ProcessPoolExecutor`` inside every
parallel :func:`~repro.verifier.runtime.execute_checks` call: correct, and
cheap enough for one CLI invocation, but a daemon answering a stream of
requests would pay worker spawn + context shipping on *every* request.
:class:`PoolManager` lifts the pool out of per-call scope:

* **One long-lived executor.**  Workers are spawned once and reused across
  requests; ``stats()["pools_created"]`` counts executor builds, and the
  serve benchmark asserts it stays at 1 in steady state (pool rebuilds
  only happen after a worker death).
* **Token-addressed context shipping.**  A verification context (check
  function, compiled specs, automaton builder, options) is pickled once
  per context and cached *inside each worker* under an integer token;
  steady-state submissions carry only the token, the request's dense
  graph table and the work batch.  A worker that does not hold the token
  (a fresh worker, or one that evicted it) answers ``need-context`` and
  the batch is resubmitted with the payload attached — requests are never
  lost to a cache miss.
* **Crash recovery by delegation.**  ``BrokenProcessPool`` keeps completed
  results, rebuilds the shared executor (counted), and hands the
  *unfinished* work to the classic per-call
  :class:`~repro.verifier.runtime.ResilientPool`, whose bisection /
  isolation / serial-fallback state machine attributes poisonous checks
  exactly as the library path does.  Fault-injected runs
  (``options.fault_plan``) bypass the shared pool entirely for the same
  reason: injected crash schedules assume the per-call pool's attempt
  accounting, and the differential suite pins those reports byte for byte.

The manager's :meth:`runner` method has the exact signature of
:func:`repro.verifier.engine._execute_unique_checks`, so it plugs into
:attr:`repro.verifier.session.VerificationSession.runner` unchanged.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any

from repro.verifier.runtime import (
    CheckFailure,
    CheckFn,
    ExecutionResult,
    WorkItem,
    _record,
    execute_checks,
    run_batch,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.snapshots.forwarding_graph import ForwardingGraph
    from repro.verifier.engine import CompiledSpec, VerificationOptions
    from repro.verifier.state_automata import StateAutomatonBuilder

#: Verification contexts each *worker process* retains, LRU.  Sized for a
#: busy multi-tenant daemon: most requests land on a handful of hot
#: session contexts; a cold context costs one payload reship.
WORKER_CONTEXT_LIMIT = 16

# Worker-process-local context cache: token -> (check_fn, compiled_specs,
# builder, options).  Installed lazily from submission payloads, never by
# a pool initializer, so one pool serves every context.
_CONTEXTS: OrderedDict[int, tuple] = OrderedDict()


def _serve_batch(
    token: int,
    payload: bytes | None,
    graph_table: list["ForwardingGraph"],
    batch: list[WorkItem],
) -> tuple[str, Any]:
    """Worker entry point: resolve the context by token, run the batch.

    Returns ``("ok", results)`` or ``("need-context", token)`` when the
    token is unknown here and no payload was attached (the parent then
    resubmits the batch with the pickled context).
    """
    context = _CONTEXTS.get(token)
    if context is None:
        if payload is None:
            return ("need-context", token)
        context = pickle.loads(payload)
        _CONTEXTS[token] = context
        while len(_CONTEXTS) > WORKER_CONTEXT_LIMIT:
            _CONTEXTS.popitem(last=False)
    else:
        _CONTEXTS.move_to_end(token)
    check_fn, compiled_specs, builder, options = context
    return (
        "ok",
        run_batch(check_fn, compiled_specs, builder, options, graph_table, {}, batch),
    )


class PoolManager:
    """A process pool shared by every request of a verification service.

    Thread-safe: server executor threads call :meth:`execute` concurrently;
    submissions interleave on the shared executor, and rebuild-after-crash
    is serialized under the manager lock.  ``workers`` fixes the pool
    width; requests whose options ask for serial execution (or that carry
    a single check, or a fault plan) take the classic per-call path via
    :func:`~repro.verifier.runtime.execute_checks` — report-transparency
    is the invariant, pool reuse is the optimization.
    """

    def __init__(self, workers: int = 2, *, max_contexts: int = 64) -> None:
        if workers < 2:
            raise ValueError("a shared pool needs at least 2 workers")
        self.workers = workers
        self.max_contexts = max_contexts
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None
        self._generation = 0
        #: Tokens whose payload at least one gang round delivered since the
        #: last rebuild; submissions for them omit the payload first.
        self._published: set[int] = set()
        # Parent-side context registry.  Strong references pin the id()
        # keys, so a token can never alias a recycled context object.
        self._tokens: dict[tuple[int, int, int, int], int] = {}
        self._registered: OrderedDict[int, tuple] = OrderedDict()
        self._payloads: dict[int, bytes] = {}
        self._next_token = 0
        self._stats = {
            "pools_created": 0,
            "pool_rebuilds": 0,
            "requests": 0,
            "bypassed_requests": 0,
            "executed_checks": 0,
            "contexts_registered": 0,
            "context_payload_sends": 0,
            "context_misses": 0,
        }

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """A snapshot of the pool counters (the ``/healthz`` payload)."""
        with self._lock:
            return dict(self._stats)

    def shutdown(self) -> None:
        """Stop the workers; in-flight futures are cancelled."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(cancel_futures=True)

    def _ensure_executor(self) -> tuple[ProcessPoolExecutor, int]:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
                self._generation += 1
                self._stats["pools_created"] += 1
                self._published.clear()
            return self._executor, self._generation

    def _rebuild_after_crash(self, generation: int) -> None:
        """Replace a broken executor (once per generation, however many
        requests observed the same crash)."""
        with self._lock:
            self._stats["pool_rebuilds"] += 1
            if self._generation != generation or self._executor is None:
                return
            broken, self._executor = self._executor, None
        broken.shutdown(cancel_futures=True)

    # ------------------------------------------------------------------
    # Context registry
    # ------------------------------------------------------------------
    def _context_token(
        self,
        check_fn: CheckFn,
        compiled_specs: dict,
        builder: "StateAutomatonBuilder",
        options: "VerificationOptions",
    ) -> int:
        key = (id(check_fn), id(compiled_specs), id(builder), id(options))
        with self._lock:
            token = self._tokens.get(key)
            if token is not None:
                self._registered.move_to_end(token)
                return token
            token = self._next_token
            self._next_token += 1
            self._tokens[key] = token
            self._registered[token] = (check_fn, compiled_specs, builder, options, key)
            self._stats["contexts_registered"] += 1
            while len(self._registered) > self.max_contexts:
                old_token, entry = self._registered.popitem(last=False)
                del self._tokens[entry[4]]
                self._payloads.pop(old_token, None)
                self._published.discard(old_token)
            return token

    def _payload_for(self, token: int) -> bytes:
        with self._lock:
            payload = self._payloads.get(token)
            if payload is None:
                check_fn, compiled_specs, builder, options, _ = self._registered[token]
                payload = pickle.dumps((check_fn, compiled_specs, builder, options))
                self._payloads[token] = payload
            return payload

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def runner(
        self,
        unique_work: list[WorkItem],
        graph_table: Sequence["ForwardingGraph"],
        compiled_specs: dict[str, "CompiledSpec"],
        builder: "StateAutomatonBuilder",
        options: "VerificationOptions",
    ) -> ExecutionResult:
        """Drop-in ``_execute_unique_checks`` replacement (session hook)."""
        return self.execute(unique_work, graph_table, compiled_specs, builder, options)

    def execute(
        self,
        unique_work: Sequence[WorkItem],
        graph_table: Sequence["ForwardingGraph"],
        compiled_specs: dict[str, "CompiledSpec"],
        builder: "StateAutomatonBuilder",
        options: "VerificationOptions",
        check_fn: CheckFn | None = None,
    ) -> ExecutionResult:
        """Run a deduplicated work list, reusing the shared pool.

        Outcome-equivalent to :func:`~repro.verifier.runtime.execute_checks`
        with the same arguments — the differential suite pins this — but in
        the common case no pool is built and no context is re-shipped.
        """
        if check_fn is None:
            from repro.verifier.engine import _check_one_fec

            check_fn = _check_one_fec
        with self._lock:
            self._stats["requests"] += 1
            self._stats["executed_checks"] += len(unique_work)
        if (
            not unique_work
            or options.workers <= 1
            or len(unique_work) <= 1
            or options.fault_plan is not None
        ):
            # Serial requests never needed a pool; single-check and
            # fault-injected requests keep the per-call path so their
            # reports (including injected-crash attempt accounting) stay
            # byte-identical to the library's.
            with self._lock:
                self._stats["bypassed_requests"] += 1
            return execute_checks(
                unique_work, graph_table, compiled_specs, builder, options, check_fn
            )

        result = ExecutionResult()
        token = self._context_token(check_fn, compiled_specs, builder, options)
        table = list(graph_table)
        chunk_size = max(1, len(unique_work) // (self.workers * 4))
        batches = [
            list(unique_work[i : i + chunk_size])
            for i in range(0, len(unique_work), chunk_size)
        ]
        executor, generation = self._ensure_executor()
        published = token in self._published
        payload = None if published else self._payload_for(token)
        if payload is not None:
            with self._lock:
                self._stats["context_payload_sends"] += 1

        try:
            futures = {
                executor.submit(_serve_batch, token, payload, table, batch): batch
                for batch in batches
            }
        except (BrokenProcessPool, RuntimeError):
            # Pool already broken (or shut down) before submission: rebuild
            # and run this request on the classic path.
            self._rebuild_after_crash(generation)
            result.pool_rebuilds += 1
            return execute_checks(
                unique_work, graph_table, compiled_specs, builder, options, check_fn
            )

        pending = set(futures)
        crashed = False
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                batch = futures[future]
                try:
                    kind, value = future.result()
                except BrokenProcessPool:
                    crashed = True
                    continue
                except Exception as error:  # noqa: BLE001 - batch failed, pool intact
                    for item in batch:
                        if item[0] in result.outcomes:
                            continue
                        failure = CheckFailure(
                            fec_id=item[0],
                            fec_description=item[0],
                            reason="error",
                            detail=f"batch execution failed: "
                            f"{type(error).__name__}: {error}",
                        )
                        _record(result, options, item[0], failure, 0)
                    continue
                if kind == "need-context":
                    # A worker without this context picked the batch up:
                    # resubmit with the payload attached.
                    with self._lock:
                        self._stats["context_misses"] += 1
                        self._stats["context_payload_sends"] += 1
                    resubmitted = executor.submit(
                        _serve_batch, token, self._payload_for(token), table, batch
                    )
                    futures[resubmitted] = batch
                    pending.add(resubmitted)
                    continue
                for fec_id, outcome, retries in value:
                    _record(result, options, fec_id, outcome, retries)
        if crashed:
            self._rebuild_after_crash(generation)
            result.pool_rebuilds += 1
            remaining = [
                item for item in unique_work if item[0] not in result.outcomes
            ]
            if remaining:
                # Classic resilient path finishes the request: bisection
                # and isolation attribute any poisonous check exactly as a
                # per-call pool would.
                recovered = execute_checks(
                    remaining, graph_table, compiled_specs, builder, options, check_fn
                )
                result.outcomes.update(recovered.outcomes)
                result.degraded = result.degraded or recovered.degraded
                result.failed_checks += recovered.failed_checks
                result.pool_rebuilds += recovered.pool_rebuilds
                result.retried_checks += recovered.retried_checks
                result.serial_fallback = result.serial_fallback or recovered.serial_fallback
        else:
            with self._lock:
                self._published.add(token)
        return result
