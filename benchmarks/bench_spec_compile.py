"""Spec-compilation microbenchmark: the 30+-branch multi_shift tail.

The ROADMAP performance log records the seed's cliff: eagerly compiling a
``multi_shift`` spec with ~37 atomic branches exceeded 570 seconds, which
excluded the paper's routing-architecture tail (Figure 5, up to ~40 atomic
specs) from the reproduction.  The delayed-operation layer compiles the same
spec as a lazy relation DAG in milliseconds and verifies the change
end-to-end in seconds; these benchmarks pin both numbers so the
perf-regression CI gate can defend them.
"""

from __future__ import annotations

from repro.rela.compile import zone
from repro.rela.spec import flatten_else
from repro.verifier import VerificationOptions, build_alphabet, compile_spec, verify_change
from repro.workloads.changes import independent_multi_shift


def _spec_alphabet(scenario, db):
    spec_symbols = zone(scenario.spec).symbols()
    for branch in flatten_else(scenario.spec):
        spec_symbols |= zone(branch).symbols()
    return build_alphabet(scenario.pre, scenario.post, db=db, extra_symbols=spec_symbols)


def test_spec_compile_multi_shift_37(benchmark, backbone, pre_snapshot):
    """Delayed compilation of a 37-atomic spec (DAG construction only)."""
    scenario = independent_multi_shift(backbone, pre_snapshot)
    assert scenario.atomic_count == 37
    alphabet = _spec_alphabet(scenario, backbone.location_db())

    compiled = benchmark(lambda: compile_spec(scenario.spec, alphabet))

    assert len(compiled.branches) == 37
    print()
    print(
        "Spec compilation (37 atomic branches, delayed DAG): "
        f"{benchmark.stats.stats.median * 1000:.1f} ms median "
        "(the eager seed path exceeded 570 s end-to-end)"
    )


def test_verify_multi_shift_37_end_to_end(benchmark, backbone, pre_snapshot):
    """Scenario-35-class validation end-to-end (compile + all FEC checks)."""
    scenario = independent_multi_shift(backbone, pre_snapshot)
    db = backbone.location_db()
    options = VerificationOptions(collect_counterexamples=False)

    report = benchmark.pedantic(
        lambda: verify_change(scenario.pre, scenario.post, scenario.spec, db=db, options=options),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )

    assert report.holds == scenario.expect_holds is True
    print()
    print(
        "37-atomic multi_shift verified end-to-end in "
        f"{benchmark.stats.stats.median:.2f} s median (was >570 s at the seed)"
    )
