"""Backbone-scale throughput: verify a 10^5-FEC change in single-digit seconds.

The paper validates changes on a WAN with ~10^6 traffic classes.  This
benchmark drives the ``scale`` workload profile (see
:mod:`repro.workloads.scale`) through ``verify_change`` and reports the
numbers that matter at that scale:

* **FECs/sec** — end-to-end verification throughput;
* **setup vs check split** — setup (spec compilation + dedup grouping by
  interned graph refs) must scale with the number of *unique* graph pairs,
  not with the FEC count;
* **peak RSS** — structural sharing keeps the snapshot pair and the
  verification run proportional to distinct graphs.

Environment knobs (both optional):

* ``SCALE_FECS`` — population size (default 100000; CI uses a smaller one);
* ``SCALE_JSON`` — write the measured throughput record to this path, in the
  format ``benchmarks/check_perf_regression.py`` consumes for the CI gate.
"""

from __future__ import annotations

import gc
import json
import os
import resource

import pytest

from repro.verifier import VerificationOptions, verify_change
from repro.workloads.scale import ScaleProfile, generate_scale_change


def _peak_rss_mb() -> float:
    # ru_maxrss is KiB on Linux (bytes on macOS; the benchmark targets Linux CI).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.fixture(scope="module")
def scale_scenario():
    num_fecs = int(os.environ.get("SCALE_FECS", "100000"))
    return generate_scale_change(ScaleProfile(num_fecs=num_fecs))


def test_scale_verify_throughput(benchmark, scale_scenario):
    options = VerificationOptions(collect_counterexamples=False)

    def run():
        return verify_change(
            scale_scenario.pre, scale_scenario.post, scale_scenario.spec, options=options
        )

    report = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)

    assert report.holds == scale_scenario.expect_holds is True
    assert report.total_fecs == len(scale_scenario.pre)
    # The whole point: checks scale with distinct graph pairs, not FECs.
    assert report.unique_checks < max(1000, report.total_fecs // 10)

    fecs_per_sec = report.total_fecs / report.elapsed_seconds
    print()
    print(
        f"scale throughput: {report.total_fecs} FECs in {report.elapsed_seconds:.2f}s "
        f"({fecs_per_sec:,.0f} FECs/sec)"
    )
    print(
        f"  setup {report.setup_seconds * 1000:.0f} ms (dedup grouping + spec compile) vs "
        f"check {report.check_seconds * 1000:.0f} ms over {report.unique_checks} unique "
        f"graph pairs ({report.total_fecs - report.unique_checks} FECs shared a verdict)"
    )
    print(
        f"  distinct graphs: pre {scale_scenario.pre.distinct_graph_count()}, "
        f"post {scale_scenario.post.distinct_graph_count()}, "
        f"store {len(scale_scenario.pre.store)}"
    )
    print(f"  peak RSS: {_peak_rss_mb():.0f} MB")

    json_path = os.environ.get("SCALE_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "fec_count": report.total_fecs,
                    "fecs_per_sec": fecs_per_sec,
                    "elapsed_seconds": report.elapsed_seconds,
                    "setup_seconds": report.setup_seconds,
                    "check_seconds": report.check_seconds,
                    "unique_checks": report.unique_checks,
                    "peak_rss_mb": _peak_rss_mb(),
                },
                handle,
                indent=2,
            )


def test_scale_resilience_guard_overhead(scale_scenario, guard_cost_per_check):
    """Arming the per-check deadline guard must be ~free at scale.

    The guarded run (``check_timeout``/``max_retries`` set) must complete
    clean — proving the guard is inert when nothing faults — and its cost is
    the calibrated per-check guard figure (see ``guard_cost_per_check`` in
    ``conftest.py``) scaled by the run's unique checks, as a fraction of the
    fastest observed check phase.  That composition is deterministic where a
    two-arm wall-clock diff is not: runner jitter on this ~100 ms workload is
    ±10%, an order of magnitude above the true guard cost.  The gate
    (``scale.max_guard_overhead_pct`` in ``BENCH_fig6.json``) is an absolute
    ceiling: arming the guard per FEC instead of per unique check, or a
    guard whose per-check cost balloons, trips it immediately.
    """
    guarded = VerificationOptions(
        collect_counterexamples=False, check_timeout=30.0, max_retries=2
    )
    best_check_s = float("inf")
    unique_checks = 0
    for _ in range(3):
        gc.collect()
        report = verify_change(
            scale_scenario.pre, scale_scenario.post, scale_scenario.spec, options=guarded
        )
        assert report.holds and not report.degraded
        best_check_s = min(best_check_s, report.check_seconds)
        unique_checks = report.unique_checks

    # Fastest check phase in the denominator = the most conservative
    # (largest) overhead estimate.
    overhead_pct = guard_cost_per_check * unique_checks / best_check_s * 100.0
    print()
    print(
        f"resilience guard overhead: {overhead_pct:+.2f}% of the check phase "
        f"({guard_cost_per_check * 1e6:.1f} us/check x {unique_checks} unique checks "
        f"vs {best_check_s * 1000:.0f} ms)"
    )

    json_path = os.environ.get("SCALE_JSON")
    if json_path and os.path.exists(json_path):
        # test_scale_verify_throughput wrote the record earlier in this run;
        # fold the overhead measurement into it for the CI gate.
        with open(json_path) as handle:
            record = json.load(handle)
        record["guard_overhead_pct"] = overhead_pct
        with open(json_path, "w") as handle:
            json.dump(record, handle, indent=2)


def test_scale_snapshot_sharing(scale_scenario):
    """Structural sharing holds at scale: distinct graphs ≪ FECs, COW copies."""
    pre, post = scale_scenario.pre, scale_scenario.post
    assert pre.store is post.store  # traffic_shift copies are copy-on-write
    assert pre.distinct_graph_count() < len(pre) // 10
    # Unchanged FECs resolve to the *same* frozen object in both snapshots.
    shared = sum(
        1 for fec_id in pre.fec_ids() if pre.graph_ref(fec_id) == post.graph_ref(fec_id)
    )
    assert shared > len(pre) // 2
    clone = pre.copy(name="clone")
    assert clone.store is pre.store
    sample = pre.fec_ids()[0]
    assert clone.graph(sample) is pre.graph(sample)
