"""Contingency-sweep throughput: shared-session sweeps vs naive per-contingency cost.

"Does the drain still hold under any single link failure?"  Answered
naively, every contingency pays a full verification: its own routing
recompute, its own snapshot pair, its own sweep over every distinct
(spec, pre graph, post graph) combination.  This benchmark drives the
CI-sized backbone drain (the ``scale`` workload's 20k-FEC backbone,
verified at the group granularity the paper's Figure 1 change reasons at)
through one :class:`~repro.verifier.contingency.ContingencySweep`:

* **failure model** — every single-link-bundle failure, plus the
  planned-maintenance severance of each region interconnect.  Single
  failures are mostly absorbed by parallel redundancy (their group-level
  graphs are baseline graphs — the "most failures don't touch most FECs'
  graphs" regime); severed interconnects genuinely reroute transit, so the
  sweep also proves new behaviour is discovered, checked once and reused.
* **the dedup headline** — ``naive_checks`` (unique pairs summed per
  contingency: what independent one-shot runs would each execute) over
  ``executed_checks`` (what the shared session actually ran).  CI gates
  this ratio as a hard floor of 10x: losing cross-contingency interning,
  the session verdict cache or the derivation's baseline-trace reuse
  collapses it toward 1x.

Environment knobs (all optional):

* ``SWEEP_FECS`` — classes per contingency snapshot (default 20000);
* ``SWEEP_JSON`` — write the measured record to this path, in the format
  ``benchmarks/check_perf_regression.py --sweep`` consumes.

The sweep is then re-run with ``--checkpoint`` durability enabled
(journaling every completed contingency's report, cache deltas and new
graphs to disk as it lands) and the time spent journaling — measured
inside the run, see ``SweepReport.checkpoint_seconds`` — is reported as
``checkpoint_overhead_pct`` of the plain sweep's wall.  CI gates it at an
absolute 2% ceiling, the bar for "crash-resume is effectively free at
sweep granularity".
"""

from __future__ import annotations

import json
import os
import resource
import tempfile
import time

import pytest

from repro.verifier import single_link_failures
from repro.workloads.contingencies import (
    drain_sweep_scenario,
    interconnect_maintenance_sets,
)
from repro.workloads.scale import ScaleProfile, scale_backbone


def _peak_rss_mb() -> float:
    # ru_maxrss is KiB on Linux (bytes on macOS; the benchmark targets Linux CI).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.fixture(scope="module")
def sweep_inputs():
    num_fecs = int(os.environ.get("SWEEP_FECS", "20000"))
    backbone = scale_backbone(ScaleProfile(num_fecs=num_fecs))
    scenario = drain_sweep_scenario(backbone, num_fecs=num_fecs)
    contingencies = single_link_failures(backbone.topology)
    contingencies += interconnect_maintenance_sets(backbone)
    return backbone, scenario, contingencies


def test_contingency_sweep_dedup(sweep_inputs, guard_cost_per_check):
    backbone, scenario, contingencies = sweep_inputs

    started = time.perf_counter()
    sweep = scenario.sweep(contingencies).run()
    sweep_seconds = time.perf_counter() - started

    assert sweep.holds, sweep.summary()
    assert not sweep.expectation_mismatches
    baseline_report = sweep.results[0].report
    print()
    print(
        f"contingency sweep: {sweep.contingencies} contingencies x "
        f"{baseline_report.total_fecs} FECs "
        f"({sweep.distinct_graphs} distinct graphs sweep-wide)"
    )
    print(
        f"  naive cost:    {sweep.naive_checks} unique pair checks "
        f"(~{sweep.naive_checks // max(1, sweep.contingencies)} per contingency)"
    )
    print(
        f"  executed:      {sweep.executed_checks} "
        f"({sweep.cached_checks} served from the shared session cache)"
    )
    print(f"  dedup ratio:   {sweep.dedup_ratio:.1f}x")
    print(
        f"  wall: {sweep_seconds:.2f}s "
        f"(derive {sweep.derive_seconds:.2f}s / check {sweep.check_seconds:.2f}s, "
        f"{sweep.contingencies / sweep_seconds:.1f} contingencies/s)"
    )
    print(f"  peak RSS: {_peak_rss_mb():.0f} MB")

    # The acceptance bar: the sweep executes at least 10x fewer distinct
    # checks than contingencies x unique-pairs-per-contingency.
    assert sweep.dedup_ratio >= 10.0, (
        f"dedup ratio {sweep.dedup_ratio:.1f}x below the 10x bar"
    )
    # Non-degenerate: the maintenance severances must have exhibited (and
    # the sweep verified) genuinely new forwarding behaviour beyond the
    # baseline contingency's checks.
    assert sweep.executed_checks > baseline_report.unique_checks

    # What arming the resilience deadline guard would cost this sweep: the
    # calibrated per-check figure (conftest.guard_cost_per_check) scaled by
    # the checks actually executed, relative to the sweep's check phase.
    # The guard is paid once per *executed* check, so the sweep's dedup
    # makes it even cheaper here than in the one-shot scale run.
    guard_overhead_pct = (
        guard_cost_per_check * sweep.executed_checks / sweep.check_seconds * 100.0
    )
    print(
        f"  resilience guard overhead: {guard_overhead_pct:+.2f}% of the check phase "
        f"({guard_cost_per_check * 1e6:.1f} us/check x {sweep.executed_checks} executed checks)"
    )

    # Checkpoint overhead: the identical sweep with per-unit journaling on.
    # The overhead is SweepReport.checkpoint_seconds — the time the run
    # actually spent opening the journal, pickling/flushing unit records
    # and fsyncing on close, measured inside the run — as a fraction of
    # the plain sweep's wall.  Like the guard figure above, a two-arm
    # wall-clock comparison cannot resolve a sub-2% cost against shared-
    # runner jitter (back-to-back identical 30s runs differ by 10-20%);
    # the direct measurement *is* resolvable, and journaling per FEC
    # instead of per contingency (or an fsync per record) blows straight
    # through the CI ceiling.
    with tempfile.TemporaryDirectory(prefix="sweep-ckpt-") as ckpt_dir:
        ckpt_path = os.path.join(ckpt_dir, "sweep.ckpt")
        checkpointed = scenario.sweep(contingencies).run(checkpoint=ckpt_path)
        journal_mb = os.path.getsize(ckpt_path) / (1024.0 * 1024.0)
    assert checkpointed.holds
    assert checkpointed.executed_checks == sweep.executed_checks
    checkpoint_overhead_pct = checkpointed.checkpoint_seconds / sweep_seconds * 100.0
    print(
        f"  checkpoint overhead: {checkpoint_overhead_pct:+.2f}% of the plain wall "
        f"({checkpointed.checkpoint_seconds * 1000.0:.0f} ms journaling, "
        f"journal {journal_mb:.1f} MB for {sweep.contingencies} units)"
    )

    json_path = os.environ.get("SWEEP_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "fec_count": baseline_report.total_fecs,
                    "contingencies": sweep.contingencies,
                    "naive_checks": sweep.naive_checks,
                    "executed_checks": sweep.executed_checks,
                    "cached_checks": sweep.cached_checks,
                    "dedup_ratio": sweep.dedup_ratio,
                    "distinct_graphs": sweep.distinct_graphs,
                    "sweep_seconds": sweep_seconds,
                    "derive_seconds": sweep.derive_seconds,
                    "check_seconds": sweep.check_seconds,
                    "contingencies_per_sec": sweep.contingencies / sweep_seconds,
                    "guard_overhead_pct": guard_overhead_pct,
                    "checkpoint_overhead_pct": checkpoint_overhead_pct,
                    "checkpoint_journal_mb": journal_mb,
                    "peak_rss_mb": _peak_rss_mb(),
                },
                handle,
                indent=2,
            )
