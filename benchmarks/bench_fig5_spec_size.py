"""Figure 5: distribution of Rela spec sizes across the change dataset.

The paper reports that 93% of high-risk changes need fewer than 10 atomic
specs, half need exactly one ("no expected forwarding impact"), and a small
tail of routing-architecture changes needs up to ~40.  This benchmark builds
the Rela spec for every change in the synthetic dataset, prints the CDF rows
of Figure 5 and asserts the headline shape claims.
"""

from __future__ import annotations

from repro.workloads.changes import generate_change_dataset


def spec_sizes(backbone, pre_snapshot):
    dataset = generate_change_dataset(backbone, pre_snapshot, count=60, seed=23)
    return sorted(scenario.atomic_count for scenario in dataset)


def test_fig5_spec_size_distribution(benchmark, backbone, pre_snapshot):
    sizes = benchmark(spec_sizes, backbone, pre_snapshot)

    total = len(sizes)
    fraction_single = sum(1 for size in sizes if size == 1) / total
    fraction_small = sum(1 for size in sizes if size < 10) / total

    # Headline claims of Figure 5 / Section 9.1.
    assert fraction_single >= 0.4, "about half the changes expect no forwarding impact"
    assert fraction_small >= 0.9, "the vast majority of specs stay below 10 atomic terms"
    assert max(sizes) >= 10, "a tail of large multi-shift changes exists"

    print()
    print("Figure 5 (reproduced): CDF of the number of atomic specs per change")
    print(f"  {'atomic specs':>12} | {'CDF':>6}")
    for threshold in (1, 2, 4, 7, 10, 13, 20, 37, max(sizes)):
        cdf = sum(1 for size in sizes if size <= threshold) / total
        print(f"  {threshold:>12} | {cdf:>6.2f}")
    print(f"  paper: 93% of changes need < 10 atomic specs; ours: {fraction_small:.0%}")
    print(f"  paper: half need exactly 1;                    ours: {fraction_single:.0%}")
