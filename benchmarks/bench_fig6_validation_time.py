"""Figure 6: distribution of change validation time.

The paper validates every change in its dataset against the same snapshot
pair and reports the CDF of wall-clock time: the median equals the cost of
the "no change" spec, 80% finish within 20 minutes, the worst case takes 150
minutes on a 96-core machine.  Absolute numbers do not transfer to a laptop
and a synthetic backbone, but the *shape* does: the median is the no-change
check, and larger specs sit in the tail.

The benchmark measures the median point (the ``nochange`` spec over every
flow equivalence class) and additionally prints the full per-change timing
CDF measured once outside the benchmark loop.  The CDF sweeps the *entire*
change dataset — including the 30+-atomic ``multi_shift`` scenarios that
the eager spec compiler could not finish and that earlier perf records had
to exclude — and asserts every verdict against the scenario's expectation.

Environment knobs (both optional):

* ``FIG6_LIMIT`` — sweep only the first N scenarios (quick local runs);
* ``FIG6_CDF_JSON`` — write the measured CDF quantiles to this path, in the
  format ``benchmarks/check_perf_regression.py`` consumes for the CI gate.
"""

from __future__ import annotations

import json
import os
import time

from repro.verifier import VerificationOptions, verify_change
from repro.workloads.changes import no_change


def _quantile(sorted_times: list[float], quantile: float) -> float:
    index = min(len(sorted_times) - 1, int(quantile * len(sorted_times)))
    return sorted_times[index]


def test_fig6_validation_time_cdf(benchmark, backbone, pre_snapshot, change_dataset):
    db = backbone.location_db()
    options = VerificationOptions(collect_counterexamples=False)

    limit = int(os.environ.get("FIG6_LIMIT", "0"))
    population = change_dataset[:limit] if limit else change_dataset

    # Measure every change once (the Figure 6 population)...
    timings: list[tuple[str, int, float, bool]] = []
    for scenario in population:
        started = time.perf_counter()
        report = verify_change(scenario.pre, scenario.post, scenario.spec, db=db, options=options)
        elapsed = time.perf_counter() - started
        timings.append((scenario.archetype, scenario.atomic_count, elapsed, report.holds))
        assert report.holds == scenario.expect_holds

    # ... and benchmark the median point: the plain "no change" validation.
    median_scenario = no_change(pre_snapshot)
    report = benchmark(
        lambda: verify_change(
            median_scenario.pre, median_scenario.post, median_scenario.spec, db=db, options=options
        )
    )
    assert report.holds

    nochange_times = sorted(t for archetype, _n, t, _h in timings if archetype == "no_change")
    other_times = sorted(t for archetype, _n, t, _h in timings if archetype != "no_change")
    all_times = sorted(t for _a, _n, t, _h in timings)

    print()
    print(
        "Figure 6 (reproduced): CDF of validation time over "
        f"{len(all_times)} changes (full dataset, multi_shift tail included)"
    )
    for quantile in (0.5, 0.8, 1.0):
        print(f"  p{int(quantile * 100):>3}: {_quantile(all_times, quantile) * 1000:8.1f} ms")
    if nochange_times and other_times:
        print(
            f"  median no-change check {nochange_times[len(nochange_times)//2]*1000:.1f} ms vs "
            f"largest change {other_times[-1]*1000:.1f} ms"
        )
        # Shape claim: the no-change check bounds the median; bigger specs cost more.
        assert nochange_times[len(nochange_times) // 2] <= other_times[-1]

    cdf_path = os.environ.get("FIG6_CDF_JSON")
    if cdf_path:
        with open(cdf_path, "w") as handle:
            json.dump(
                {
                    "count": len(all_times),
                    "p50_ms": _quantile(all_times, 0.5) * 1000,
                    "p80_ms": _quantile(all_times, 0.8) * 1000,
                    "p100_ms": _quantile(all_times, 1.0) * 1000,
                },
                handle,
                indent=2,
            )
