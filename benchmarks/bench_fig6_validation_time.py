"""Figure 6: distribution of change validation time.

The paper validates every change in its dataset against the same snapshot
pair and reports the CDF of wall-clock time: the median equals the cost of
the "no change" spec, 80% finish within 20 minutes, the worst case takes 150
minutes on a 96-core machine.  Absolute numbers do not transfer to a laptop
and a synthetic backbone, but the *shape* does: the median is the no-change
check, and larger specs sit in the tail.

The benchmark measures the median point (the ``nochange`` spec over every
flow equivalence class) and additionally prints the full per-change timing
CDF measured once outside the benchmark loop.
"""

from __future__ import annotations

import time

from repro.verifier import VerificationOptions, verify_change
from repro.workloads.changes import no_change


def test_fig6_validation_time_cdf(benchmark, backbone, pre_snapshot, change_dataset):
    db = backbone.location_db()
    options = VerificationOptions(collect_counterexamples=False)

    # Measure every change once (the Figure 6 population)...
    timings: list[tuple[str, int, float, bool]] = []
    for scenario in change_dataset[:20]:
        started = time.perf_counter()
        report = verify_change(scenario.pre, scenario.post, scenario.spec, db=db, options=options)
        elapsed = time.perf_counter() - started
        timings.append((scenario.archetype, scenario.atomic_count, elapsed, report.holds))
        assert report.holds == scenario.expect_holds

    # ... and benchmark the median point: the plain "no change" validation.
    median_scenario = no_change(pre_snapshot)
    report = benchmark(
        lambda: verify_change(
            median_scenario.pre, median_scenario.post, median_scenario.spec, db=db, options=options
        )
    )
    assert report.holds

    nochange_times = sorted(t for archetype, _n, t, _h in timings if archetype == "no_change")
    other_times = sorted(t for archetype, _n, t, _h in timings if archetype != "no_change")
    all_times = sorted(t for _a, _n, t, _h in timings)

    print()
    print("Figure 6 (reproduced): CDF of validation time over the change dataset")
    for quantile in (0.5, 0.8, 1.0):
        index = min(len(all_times) - 1, int(quantile * len(all_times)))
        print(f"  p{int(quantile * 100):>3}: {all_times[index]*1000:8.1f} ms")
    if nochange_times and other_times:
        print(
            f"  median no-change check {nochange_times[len(nochange_times)//2]*1000:.1f} ms vs "
            f"largest change {other_times[-1]*1000:.1f} ms"
        )
        # Shape claim: the no-change check bounds the median; bigger specs cost more.
        assert nochange_times[len(nochange_times) // 2] <= other_times[-1]
