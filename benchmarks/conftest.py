"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on top of a
synthetic backbone (see DESIGN.md for the substitution rationale).  The
fixtures here build that backbone, its traffic and the change dataset once
per session so individual benchmarks stay fast.
"""

from __future__ import annotations

import time

import pytest

from repro.verifier.runtime import _deadline
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.changes import generate_change_dataset
from repro.workloads.figure1 import build_scenario
from repro.workloads.traffic import generate_fecs


@pytest.fixture(scope="session")
def backbone():
    """The benchmark backbone: 4 regions, 2 routers per group, 2x parallel links."""
    return generate_backbone(
        BackboneParams(regions=4, routers_per_group=2, parallel_links=2, prefixes_per_region=2)
    )


@pytest.fixture(scope="session")
def fecs(backbone):
    """Flow equivalence classes for the benchmark backbone."""
    return generate_fecs(backbone, max_classes=24)


@pytest.fixture(scope="session")
def pre_snapshot(backbone, fecs):
    """The simulated pre-change snapshot (router granularity)."""
    return backbone.simulator().snapshot(fecs, name="pre")


@pytest.fixture(scope="session")
def change_dataset(backbone, pre_snapshot):
    """The synthetic change dataset standing in for the paper's ticket data."""
    return generate_change_dataset(backbone, pre_snapshot, count=60, seed=23)


@pytest.fixture(scope="session")
def figure1_scenario():
    """The Figure 1 case-study scenario."""
    return build_scenario()


@pytest.fixture(scope="session")
def guard_cost_per_check() -> float:
    """Per-check cost (seconds) of arming the resilience deadline guard.

    Measured as a tight calibration loop — armed ``_deadline`` minus the
    disarmed no-op context — because the cost (~10 us of signal/setitimer
    syscalls per check) is an order of magnitude below what an end-to-end
    two-arm wall-clock comparison can resolve on a shared runner (±10%
    jitter on a ~100 ms workload).  The scale/sweep overhead benchmarks
    compose this stable per-check figure with each workload's own
    ``unique_checks``/``check_seconds``, which *is* resolvable: arming the
    guard per FEC instead of per unique check, or a guard implementation
    whose per-check cost balloons, shows up directly.
    """

    def best_per_iteration(seconds: float | None) -> float:
        iterations = 20000
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(iterations):
                with _deadline(seconds):
                    pass
            best = min(best, time.perf_counter() - start)
        return best / iterations

    return max(0.0, best_per_iteration(30.0) - best_per_iteration(None))
