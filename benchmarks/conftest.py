"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on top of a
synthetic backbone (see DESIGN.md for the substitution rationale).  The
fixtures here build that backbone, its traffic and the change dataset once
per session so individual benchmarks stay fast.
"""

from __future__ import annotations

import pytest

from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.changes import generate_change_dataset
from repro.workloads.figure1 import build_scenario
from repro.workloads.traffic import generate_fecs


@pytest.fixture(scope="session")
def backbone():
    """The benchmark backbone: 4 regions, 2 routers per group, 2x parallel links."""
    return generate_backbone(
        BackboneParams(regions=4, routers_per_group=2, parallel_links=2, prefixes_per_region=2)
    )


@pytest.fixture(scope="session")
def fecs(backbone):
    """Flow equivalence classes for the benchmark backbone."""
    return generate_fecs(backbone, max_classes=24)


@pytest.fixture(scope="session")
def pre_snapshot(backbone, fecs):
    """The simulated pre-change snapshot (router granularity)."""
    return backbone.simulator().snapshot(fecs, name="pre")


@pytest.fixture(scope="session")
def change_dataset(backbone, pre_snapshot):
    """The synthetic change dataset standing in for the paper's ticket data."""
    return generate_change_dataset(backbone, pre_snapshot, count=60, seed=23)


@pytest.fixture(scope="session")
def figure1_scenario():
    """The Figure 1 case-study scenario."""
    return build_scenario()
