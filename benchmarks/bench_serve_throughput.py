"""Benchmark: the verification daemon's sustained throughput and pool reuse.

Three arms against one live ``repro serve`` child process:

* **Sustained multi-tenant replay** — N tenants each replay a rolling-drain
  stream through their own hosted session concurrently; measures sustained
  requests/sec and p99 request latency over loopback HTTP.
* **Warm one-shot verifies** — stateless ``/v1/verify`` requests at
  ``workers=2`` through the daemon's *shared* pool; after the arm, the
  daemon's ``/healthz`` pool counters must show exactly one pool ever
  created and zero rebuilds — the tentpole claim (pool lifted out of
  per-call scope) stated as an invariant.
* **Fork-per-request baseline** — the architecture this PR replaces: one
  fresh Python process per request, loading pre-serialized inputs and
  calling ``verify_change`` with the same options.  The daemon must beat
  it by >= 5x on mean request latency (interpreter + import + per-call
  pool construction is precisely the cost a resident daemon amortizes;
  input generation is excluded from both arms).

Environment knobs:

* ``SERVE_TENANTS`` — concurrent tenants in the replay arm (default 3);
* ``SERVE_EPOCHS`` — epochs each tenant replays (default 8);
* ``SERVE_ONESHOT`` — one-shot verifies through the shared pool (default 12);
* ``SERVE_FORK_REQUESTS`` — fork-per-request baseline samples (default 4);
* ``SERVE_JSON`` — write the measured record to this path, in the format
  ``benchmarks/check_perf_regression.py --serve`` consumes.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.stream import rolling_drain_stream
from repro.workloads.traffic import generate_fecs

REPO_ROOT = Path(__file__).resolve().parents[1]

TENANTS = int(os.environ.get("SERVE_TENANTS", "3"))
EPOCHS = int(os.environ.get("SERVE_EPOCHS", "8"))
ONESHOT = int(os.environ.get("SERVE_ONESHOT", "12"))
FORK_REQUESTS = int(os.environ.get("SERVE_FORK_REQUESTS", "4"))

#: The acceptance floor: a resident daemon must beat fork-per-request by
#: at least this factor on mean request latency.
MIN_FORK_SPEEDUP = 5.0

_FORK_DRIVER = """\
import pickle, sys
from repro.verifier import VerificationOptions, verify_change

with open(sys.argv[1], "rb") as handle:
    pre, post, spec = pickle.load(handle)
report = verify_change(pre, post, spec, options=VerificationOptions(workers=2))
sys.exit(0 if report.holds else 1)
"""


def start_daemon() -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(f"daemon exited during startup: {process.poll()}")
        if line.startswith("serving on "):
            return process, line.split("serving on ", 1)[1].strip()
    process.kill()
    raise RuntimeError("daemon did not report its endpoint in time")


@pytest.fixture(scope="module")
def serve_world():
    backbone = generate_backbone(
        BackboneParams(
            regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2
        )
    )
    fecs = generate_fecs(backbone)
    initial = backbone.simulator().snapshot(fecs, name="initial")
    stream = rolling_drain_stream(backbone, initial, epochs=EPOCHS, rotation=2, seed=13)
    return initial, [(epoch.post, epoch.spec) for epoch in stream.epochs]


@pytest.fixture(scope="module")
def daemon():
    process, base_url = start_daemon()
    yield base_url
    process.terminate()
    process.wait(timeout=60)


def replay_tenant(base_url: str, tenant: str, initial, epochs) -> list[float]:
    """One tenant's full session replay; returns per-request latencies."""
    client = ServeClient(base_url)
    response = client.create_session(
        tenant, "bench", {"initial": {"data": initial.to_dict()}}
    )
    assert response.status == 200, response.payload
    latencies = []
    for post, spec in epochs:
        body = {
            "snapshot": {"data": post.to_dict()},
            "spec": protocol.pickle_b64(spec),
        }
        start = time.perf_counter()
        response = client.advance(tenant, "bench", body)
        latencies.append(time.perf_counter() - start)
        assert response.status == 200, response.payload
    return latencies


def test_serve_throughput_and_pool_reuse(serve_world, daemon, tmp_path):
    initial, epochs = serve_world
    base_url = daemon
    client = ServeClient(base_url)

    # ------------------------------------------------------------------
    # Arm 1: sustained multi-tenant session replay (serial engine options,
    # concurrency across tenants), measuring rps and p99 latency.
    # ------------------------------------------------------------------
    tenants = [f"tenant-{index}" for index in range(TENANTS)]
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=TENANTS) as executor:
        futures = [
            executor.submit(replay_tenant, base_url, tenant, initial, epochs)
            for tenant in tenants
        ]
        latencies = [latency for future in futures for latency in future.result()]
    replay_wall = time.perf_counter() - start
    requests = len(latencies)
    rps = requests / replay_wall
    p99 = sorted(latencies)[max(0, int(len(latencies) * 0.99) - 1)]

    # ------------------------------------------------------------------
    # Arm 2: warm one-shot verifies through the shared worker pool.
    # ------------------------------------------------------------------
    post, spec = epochs[0]
    oneshot_body = {
        "pre": {"data": initial.to_dict()},
        "post": {"data": post.to_dict()},
        "spec": protocol.pickle_b64(spec),
        "options": {"workers": 2},
    }
    client.verify(oneshot_body).raise_for_status()  # pool spin-up excluded
    start = time.perf_counter()
    for _ in range(ONESHOT):
        client.verify(oneshot_body).raise_for_status()
    oneshot_avg = (time.perf_counter() - start) / ONESHOT

    stats = client.healthz().payload["pool"]
    # The tentpole invariant: steady state never rebuilds the pool.
    assert stats["pools_created"] == 1, stats
    assert stats["pool_rebuilds"] == 0, stats

    # ------------------------------------------------------------------
    # Arm 3: fork-per-request baseline (the pre-daemon architecture).
    # ------------------------------------------------------------------
    inputs = tmp_path / "request.pickle"
    with open(inputs, "wb") as handle:
        pickle.dump((initial, post, spec), handle)
    driver = tmp_path / "fork_driver.py"
    driver.write_text(_FORK_DRIVER)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    fork_command = [sys.executable, str(driver), str(inputs)]
    subprocess.run(fork_command, env=env, check=True)  # warm the page cache
    start = time.perf_counter()
    for _ in range(FORK_REQUESTS):
        subprocess.run(fork_command, env=env, check=True)
    fork_avg = (time.perf_counter() - start) / FORK_REQUESTS

    speedup = fork_avg / oneshot_avg
    print(
        f"\nserve: {requests} replay requests in {replay_wall:.2f}s "
        f"({rps:.1f} rps, p99 {p99 * 1000:.1f} ms); one-shot avg "
        f"{oneshot_avg * 1000:.1f} ms vs fork-per-request {fork_avg * 1000:.1f} ms "
        f"=> {speedup:.1f}x; pool stats {stats}"
    )
    # The acceptance floor: resident daemon >= 5x fork-per-request.
    assert speedup >= MIN_FORK_SPEEDUP, (
        f"daemon only {speedup:.1f}x faster than fork-per-request "
        f"(floor {MIN_FORK_SPEEDUP}x): shared pool reuse is not paying for itself"
    )

    json_path = os.environ.get("SERVE_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "tenants": TENANTS,
                    "epochs": EPOCHS,
                    "requests": requests,
                    "replay_wall_seconds": replay_wall,
                    "rps": rps,
                    "p99_ms": p99 * 1000,
                    "oneshot_requests": ONESHOT,
                    "oneshot_avg_ms": oneshot_avg * 1000,
                    "fork_requests": FORK_REQUESTS,
                    "fork_avg_ms": fork_avg * 1000,
                    "fork_speedup": speedup,
                    "pools_created": stats["pools_created"],
                    "pool_rebuilds": stats["pool_rebuilds"],
                },
                handle,
                indent=2,
            )
