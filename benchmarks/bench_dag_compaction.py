"""Section 6.1: DAG-encoded path sets versus explicit path enumeration.

The paper motivates the forwarding-graph exchange format with a flow whose
10^8 interface-level ECMP paths took hours to even deserialize, while the DAG
encoding needs only 38 vertices.  This benchmark builds ECMP fan-out graphs,
shows that the number of encoded paths grows exponentially while the graph
stays linear in size, and compares the cost of constructing the snapshot FSA
directly from the DAG against enumerating the paths first (the ablation of
the design choice).
"""

from __future__ import annotations

import time

from repro.automata import Alphabet, FSA
from repro.rela.locations import Granularity
from repro.snapshots.forwarding_graph import ForwardingGraph


def ecmp_graph(stages: int, width: int) -> ForwardingGraph:
    """A stages×width ECMP ladder: width^stages distinct paths."""
    graph = ForwardingGraph(granularity=Granularity.INTERFACE)
    previous = ["ingress"]
    for stage in range(stages):
        current = [f"s{stage}-{member}" for member in range(width)]
        for src in previous:
            for dst in current:
                graph.add_edge(src, dst)
        previous = current
    for src in previous:
        graph.add_edge(src, "egress")
    graph.sources = {"ingress"}
    graph.sinks = {"egress"}
    return graph


def test_dag_compaction_and_fsa_construction(benchmark):
    print()
    print("Section 6.1 (reproduced): DAG size vs. number of encoded ECMP paths")
    print(f"  {'stages':>6} {'width':>6} {'nodes':>7} {'edges':>7} {'paths':>14}")
    for stages, width in [(4, 2), (8, 4), (12, 8), (16, 10)]:
        graph = ecmp_graph(stages, width)
        print(
            f"  {stages:>6} {width:>6} {graph.num_nodes:>7} {graph.num_edges:>7} "
            f"{graph.count_paths():>14,}"
        )

    # The paper's headline example: ~10^8 paths from a DAG with tens of nodes.
    big = ecmp_graph(8, 10)
    assert big.count_paths() == 10**8
    assert big.num_nodes <= 100

    # Building the snapshot automaton from the DAG is cheap...
    fsa = benchmark(lambda: big.to_fsa(Alphabet()))
    assert fsa.num_states == big.num_nodes + 1

    # ...whereas explicit enumeration of even a tiny fraction of the path set
    # is already slower than the whole DAG-based construction.
    small = ecmp_graph(6, 4)  # 4^6 = 4096 paths: still enumerable
    started = time.perf_counter()
    alphabet = Alphabet()
    enumerated = FSA.from_words(alphabet, list(small.paths(max_paths=5000)))
    enumeration_time = time.perf_counter() - started
    started = time.perf_counter()
    direct = small.to_fsa(Alphabet())
    direct_time = time.perf_counter() - started
    print(
        f"  4096-path flow: enumerate-then-build {enumeration_time*1000:.1f} ms "
        f"vs. DAG-direct {direct_time*1000:.1f} ms"
    )
    assert direct_time < enumeration_time
    assert enumerated.num_states > direct.num_states
