"""Section 8.1 case study: violation counts across change iterations.

The paper reports, per iteration, how many flow equivalence classes violate
each sub-spec (v1: 17 ``nochange`` + 15 ``e2e``; v2: 15 ``e2e`` + 24
``nochange`` + 0 ``sideEffects``; final: none).  The benchmark measures a full
case-study replay and asserts the reproduced counts.
"""

from __future__ import annotations

from repro.verifier import verify_change
from repro.workloads.figure1 import SIDE_EFFECT_CLASSES, T1_CLASSES, T2_CLASSES


def run_case_study(scenario):
    pre = scenario.pre_change()
    results = {}
    results["v1"] = verify_change(
        pre, scenario.iteration_v1(), scenario.change_spec(), db=scenario.db
    )
    results["v2"] = verify_change(
        pre, scenario.iteration_v2(), scenario.refined_spec(), db=scenario.db
    )
    results["v3"] = verify_change(
        pre, scenario.iteration_v3(), scenario.refined_spec(), db=scenario.db
    )
    results["final"] = verify_change(
        pre, scenario.final_implementation(), scenario.refined_spec(), db=scenario.db
    )
    return results


def test_case_study_iterations(benchmark, figure1_scenario):
    results = benchmark(run_case_study, figure1_scenario)

    assert results["v1"].violations_for("e2e") == T1_CLASSES == 15
    assert results["v1"].violations_for("nochange") == SIDE_EFFECT_CLASSES == 17
    assert results["v2"].violations_for("e2e") == 15
    assert results["v2"].violations_for("nochange") == T2_CLASSES == 24
    assert results["v2"].violations_for("sideEffects") == 0
    assert results["v3"].violations_for("nochange") == 0
    assert results["v3"].violations_for("e2e") == 15
    assert results["final"].holds

    v1, v2 = results["v1"], results["v2"]
    print()
    print("Section 8.1 case study (reproduced):")
    print(
        f"  paper v1:    17 nochange + 15 e2e   -> ours: "
        f"{v1.violations_for('nochange')} nochange + {v1.violations_for('e2e')} e2e"
    )
    print(
        f"  paper v2:    15 e2e + 24 nochange + 0 sideEffects -> ours: "
        f"{v2.violations_for('e2e')} e2e + {v2.violations_for('nochange')} nochange + "
        f"{v2.violations_for('sideEffects')} sideEffects"
    )
    final = "compliant" if results["final"].holds else "violations"
    print(f"  paper final: compliant -> ours: {final}")
