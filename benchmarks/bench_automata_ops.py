"""Microbenchmarks for the automata operations on the verification hot path.

Every flow equivalence class check is ``image`` → ``compare`` (plus the
occasional ``minimize`` inside spec compilation), so these three operations
dominate end-to-end validation time.  The benchmarks run them on synthetic
automata sized like backbone FECs — small layered DAG path sets over an
alphabet with hundreds of locations — and print the op counts of the lazy
constructions next to their eager reference oracles, so the speedup (and its
cause: no full-``Sigma`` completion, product bounded by local out-degree)
stays visible in CI output.
"""

from __future__ import annotations

import time

from repro.automata import FSA, Alphabet, compare
from repro.automata.fst import FST
from repro.automata.lazy import difference_dfa

#: Locations in a synthetic backbone at router granularity.
ALPHABET_SIZE = 120
#: Hops per synthetic forwarding path (source → core → core → sink).
LAYERS = 5
#: ECMP fan-out per layer.
WIDTH = 3


def backbone_alphabet() -> Alphabet:
    return Alphabet([f"r{index}" for index in range(ALPHABET_SIZE)])


def fec_path_set(alphabet: Alphabet, *, offset: int = 0) -> FSA:
    """A layered ECMP DAG path set, the shape of one backbone FEC."""
    words = []
    for lane in range(WIDTH):
        word = [f"r{(offset + layer * WIDTH + lane) % ALPHABET_SIZE}" for layer in range(LAYERS)]
        words.append(word)
    # Shared-core interleavings, as ForwardingGraph compaction produces.
    words.append([f"r{(offset + layer * WIDTH) % ALPHABET_SIZE}" for layer in range(LAYERS - 1)])
    return FSA.from_words(alphabet, words)


def preserve_relation(alphabet: Alphabet) -> FST:
    """The identity relation over ``Sigma*`` — what ``preserve .*`` compiles to."""
    return FST.identity(FSA.any_symbol(alphabet).star())


def test_bench_image_fused_vs_compose(benchmark):
    alphabet = backbone_alphabet()
    relation = preserve_relation(alphabet)
    path_set = fec_path_set(alphabet)

    fused = benchmark(lambda: relation.image(path_set))
    eager = relation.image_via_compose(path_set)
    assert fused.language() == eager.language()

    print()
    print("image (P ▷ R) on one synthetic FEC, preserve relation over "
          f"|Sigma|={len(alphabet)}:")
    print(f"  fused product : {fused.num_states:>5} states, {fused.num_transitions:>6} transitions")
    print(f"  via compose   : {eager.num_states:>5} states, {eager.num_transitions:>6} transitions")


def test_bench_compare_lazy_vs_eager(benchmark):
    alphabet = backbone_alphabet()
    relation = preserve_relation(alphabet)
    lhs = relation.image(fec_path_set(alphabet))
    rhs = relation.image(fec_path_set(alphabet))

    result = benchmark(lambda: compare(lhs, rhs))
    assert result.equal

    lazy_product = difference_dfa(lhs, rhs)
    started = time.perf_counter()
    eager_product = lhs.difference(rhs)
    eager_seconds = time.perf_counter() - started

    print()
    print("compare on two equal synthetic FEC path sets:")
    print(f"  lazy product  : {lazy_product.num_states:>5} states, "
          f"{lazy_product.num_transitions:>6} transitions (implicit sink, no completion)")
    print(f"  eager product : {eager_product.num_states:>5} states, "
          f"{eager_product.num_transitions:>6} transitions "
          f"(one difference pass: {eager_seconds * 1000:.1f} ms)")
    # The lazy product never materializes the Sigma-sized completion rows.
    assert lazy_product.num_transitions < eager_product.num_transitions


def test_bench_compare_violation_early_exit(benchmark):
    alphabet = backbone_alphabet()
    relation = preserve_relation(alphabet)
    lhs = relation.image(fec_path_set(alphabet))
    rhs = relation.image(fec_path_set(alphabet, offset=1))

    result = benchmark(lambda: compare(lhs, rhs))
    assert not result.equal
    assert result.missing and result.unexpected


def test_bench_minimize_smaller_half(benchmark):
    alphabet = backbone_alphabet()
    union = fec_path_set(alphabet)
    for offset in range(1, 8):
        union = union.union(fec_path_set(alphabet, offset=offset * 7))

    minimal = benchmark(lambda: union.minimize())
    assert minimal.equivalent(union)

    dfa = union.determinize()
    print()
    print("minimize on the union of 8 synthetic FEC path sets:")
    print(f"  input NFA     : {union.num_states:>5} states")
    print(f"  determinized  : {dfa.num_states:>5} states")
    print(f"  minimal DFA   : {minimal.num_states:>5} states")
