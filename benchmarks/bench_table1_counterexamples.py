"""Table 1: counterexamples generated for the Figure 1c (v2) implementation.

The paper's Table 1 shows two counterexamples for iteration v2: a T1 flow
whose new path bounces through B3 (violating ``e2e``) and a T2 flow that
suffered collateral damage (violating ``nochange``).  This benchmark verifies
the v2 snapshot pair, checks the reproduced counterexamples have exactly that
structure, and measures the end-to-end verification time.
"""

from __future__ import annotations

from repro.verifier import verify_change
from repro.workloads.figure1 import T2_CLASSES, T1_CLASSES


def test_table1_counterexamples(benchmark, figure1_scenario):
    scenario = figure1_scenario
    pre = scenario.pre_change()
    post = scenario.iteration_v2()
    spec = scenario.refined_spec()

    report = benchmark(lambda: verify_change(pre, post, spec, db=scenario.db))

    assert not report.holds
    assert report.violations_for("e2e") == T1_CLASSES
    assert report.violations_for("nochange") == T2_CLASSES
    assert report.violations_for("sideEffects") == 0

    by_bundle = {}
    for counterexample in report.counterexamples:
        bundle = counterexample.fec_id.split("-")[0]
        by_bundle.setdefault(bundle, counterexample)

    t1 = by_bundle["t1"]
    assert t1.pre_paths == [("x1", "A1", "B1", "B2", "B3", "D1", "y1")]
    assert t1.post_paths == [("x1", "A1", "A2", "A3", "B3", "D1", "y1")]
    assert t1.branches == ["e2e"]
    t2 = by_bundle["t2"]
    assert t2.post_paths == [("x2", "C1", "C2", "D1", "y2")]
    assert t2.branches == ["nochange"]

    print()
    print("Table 1 (reproduced): counterexamples for change implementation v2")
    print(report.table(max_rows=4))
