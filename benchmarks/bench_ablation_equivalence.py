"""Ablation: equivalence-checking strategy inside the decision procedure.

DESIGN.md calls out the choice between (a) comparing path-set automata
directly via product-with-complement difference checks (what the engine does)
and (b) determinizing and minimizing both sides first and comparing the
minimal DFAs.  This benchmark measures both strategies on the images produced
while verifying the Figure 1 change and checks they agree, quantifying the
cost of the extra minimization.
"""

from __future__ import annotations

import time

from repro.verifier import build_alphabet, compile_spec
from repro.verifier.state_automata import StateAutomatonBuilder


def build_image_pairs(scenario):
    """The (lhs, rhs) automaton pairs the verifier compares for iteration v2."""
    pre = scenario.pre_change()
    post = scenario.iteration_v2()
    spec = scenario.refined_spec()
    alphabet = build_alphabet(pre, post, db=scenario.db)
    compiled = compile_spec(spec, alphabet)
    builder = StateAutomatonBuilder(alphabet=alphabet, db=scenario.db)
    pairs = []
    for fec_id in pre.fec_ids()[:12]:
        pre_fsa = builder.build(pre.graph(fec_id))
        post_fsa = builder.build(post.graph(fec_id))
        pairs.append((compiled.pre_fst.image(pre_fsa), compiled.post_fst.image(post_fsa)))
    return pairs


def direct_strategy(pairs):
    return [lhs.difference(rhs).is_empty() and rhs.difference(lhs).is_empty() for lhs, rhs in pairs]


def minimize_strategy(pairs):
    results = []
    for lhs, rhs in pairs:
        results.append(lhs.minimize().equivalent(rhs.minimize()))
    return results


def test_ablation_equivalence_strategies(benchmark, figure1_scenario):
    pairs = build_image_pairs(figure1_scenario)

    direct = benchmark(direct_strategy, pairs)

    started = time.perf_counter()
    minimized = minimize_strategy(pairs)
    minimize_time = time.perf_counter() - started
    started = time.perf_counter()
    direct_again = direct_strategy(pairs)
    direct_time = time.perf_counter() - started

    assert direct == minimized == direct_again

    print()
    print("Ablation: equivalence-checking strategy over Figure 1 v2 image pairs")
    print(f"  direct difference checks : {direct_time*1000:8.1f} ms")
    print(f"  minimize-then-compare    : {minimize_time*1000:8.1f} ms")
    print(f"  verdicts agree on all {len(pairs)} flow equivalence classes")
