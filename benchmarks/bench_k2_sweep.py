"""k=2 contingency-sweep scale-out: incremental lattice derivation vs from-baseline.

The combinatorial failure spaces (k=2 over a candidate set) multiply the
sweep's *derivation* cost: from the healthy baseline, every k-failure
snapshot pays a changed-FIB screen plus the re-trace of every class either
failed link touches.  Incremental lattice derivation
(:class:`~repro.verifier.contingency._DerivationLattice`) instead derives
each k-failure snapshot from its (k−1)-failure parent, so the per-child
cost scales with the *marginal* effect of the last failed link.

The workload shape makes the marginal/cumulative gap structural rather
than accidental: a 12-region backbone whose prefixes are anycast at every
aggregation router, with full-mesh equal-cost intra-region links, so each
region-internal agg-core bundle failure flips a region-wide slice of every
destined trace — per child, the from-baseline scan re-traces the union of
both links' slices while the lattice re-traces only the second link's.

Both arms must agree byte-for-byte (verdicts, dedup accounting, distinct
graphs); the speedup is gated by ``check_perf_regression.py --sweep-k2``
as ``derive_ratio`` (from-baseline derive seconds / incremental derive
seconds, non-baseline units), alongside the k=2 dedup-ratio and
contingencies-per-second floors.

Environment knobs (all optional):

* ``SWEEP_K2_REGIONS`` — backbone regions (default 12);
* ``SWEEP_K2_JSON`` — write the measured record to this path, in the
  format ``benchmarks/check_perf_regression.py --sweep-k2`` consumes.
"""

from __future__ import annotations

import json
import os
import resource
import time

import pytest

from repro.verifier import k_link_failures, single_link_failures
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.contingencies import drain_sweep_scenario, intra_region_bundles
from repro.workloads.traffic import generate_fecs


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _facts(sweep) -> dict:
    """The byte-identity obligation between the two derivation arms."""
    return {
        "results": [
            (
                result.contingency.contingency_id,
                result.holds,
                result.expected_holds,
                result.report.total_fecs,
                result.report.violating_fecs,
                result.report.unique_checks,
                [
                    (ce.fec_id, tuple(ce.pre_paths), tuple(ce.post_paths))
                    for ce in result.report.counterexamples
                ],
            )
            for result in sweep.results
        ],
        "distinct_graphs": sweep.distinct_graphs,
        "naive_checks": sweep.naive_checks,
        "executed_checks": sweep.executed_checks,
        "cached_checks": sweep.cached_checks,
    }


def _derivation_seconds(sweep) -> tuple[float, float]:
    """(route, derive) seconds over the non-baseline units only — the part
    the lattice actually changes (the baseline snapshot costs the same in
    both arms and would dilute the ratio)."""
    live = [r for r in sweep.results if not r.contingency.is_baseline]
    return (
        sum(r.route_seconds for r in live),
        sum(r.derive_seconds for r in live),
    )


@pytest.fixture(scope="module")
def k2_inputs():
    regions = int(os.environ.get("SWEEP_K2_REGIONS", "12"))
    backbone = generate_backbone(
        BackboneParams(
            regions=regions,
            routers_per_group=2,
            parallel_links=2,
            prefixes_per_region=6,
        )
    )
    fecs = generate_fecs(backbone)
    candidates = intra_region_bundles(backbone)[:8]
    contingencies = single_link_failures(backbone.topology, candidates=candidates)
    contingencies += k_link_failures(backbone.topology, 2, candidates=candidates)
    return backbone, fecs, contingencies


def test_k2_sweep_incremental_derivation(k2_inputs):
    backbone, fecs, contingencies = k2_inputs

    def run(incremental: bool):
        scenario = drain_sweep_scenario(backbone, num_fecs=8)
        scenario.fecs = fecs  # the anycast/full-ECMP traffic matrix
        sweep = scenario.sweep(list(contingencies), incremental=incremental)
        started = time.perf_counter()
        report = sweep.run()
        return report, time.perf_counter() - started

    # From-baseline arm first (it is the slower one and warms nothing the
    # incremental arm could reuse: each run builds its own simulators).
    baseline_arm, baseline_wall = run(False)
    incremental_arm, incremental_wall = run(True)

    assert _facts(incremental_arm) == _facts(baseline_arm), (
        "incremental lattice derivation changed the report"
    )
    assert incremental_arm.holds, incremental_arm.summary()
    assert not incremental_arm.expectation_mismatches

    base_route, base_derive = _derivation_seconds(baseline_arm)
    incr_route, incr_derive = _derivation_seconds(incremental_arm)
    derive_ratio = base_derive / incr_derive if incr_derive > 0 else float("inf")
    contingencies_per_sec = incremental_arm.contingencies / incremental_wall

    print()
    print(
        f"k=2 sweep: {incremental_arm.contingencies} contingencies x "
        f"{len(fecs)} FECs ({incremental_arm.distinct_graphs} distinct graphs)"
    )
    print(
        f"  from-baseline arm: wall {baseline_wall:.2f}s "
        f"(route {base_route:.2f}s, derive {base_derive:.2f}s)"
    )
    print(
        f"  incremental arm:   wall {incremental_wall:.2f}s "
        f"(route {incr_route:.2f}s, derive {incr_derive:.2f}s)"
    )
    print(f"  derive ratio:  {derive_ratio:.2f}x (reports byte-identical)")
    print(f"  dedup ratio:   {incremental_arm.dedup_ratio:.1f}x")
    print(f"  throughput:    {contingencies_per_sec:.1f} contingencies/s")
    print(f"  peak RSS: {_peak_rss_mb():.0f} MB")

    # The acceptance bar: incremental derivation at least 3x cheaper than
    # the from-baseline scan at equal (byte-identical) output.
    assert derive_ratio >= 3.0, (
        f"incremental derive ratio {derive_ratio:.2f}x below the 3x bar"
    )
    assert incremental_arm.dedup_ratio >= 10.0

    json_path = os.environ.get("SWEEP_K2_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "fec_count": len(fecs),
                    "contingencies": incremental_arm.contingencies,
                    "derive_ratio": derive_ratio,
                    "base_derive_seconds": base_derive,
                    "incremental_derive_seconds": incr_derive,
                    "dedup_ratio": incremental_arm.dedup_ratio,
                    "distinct_graphs": incremental_arm.distinct_graphs,
                    "sweep_seconds": incremental_wall,
                    "contingencies_per_sec": contingencies_per_sec,
                    "peak_rss_mb": _peak_rss_mb(),
                },
                handle,
                indent=2,
            )
