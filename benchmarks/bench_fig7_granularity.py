"""Figure 7: validation time versus spec size and location granularity.

The paper sweeps spec size (N = 1, 4, 7, 13, 37 atomic specs) and granularity
(router group, router, interface) and finds that validation time grows with
spec size, that group- and router-level analyses cost about the same, and
that interface-level analysis is roughly an order of magnitude more expensive
because of the parallel-link path blowup.

The benchmark reproduces a scaled-down sweep (N = 1, 4, 7 over a smaller FEC
sample) and asserts the two shape claims; the full matrix is printed.
"""

from __future__ import annotations

import time

from repro.rela.locations import Granularity
from repro.verifier import VerificationOptions, verify_change
from repro.workloads.changes import multi_shift, no_change
from repro.workloads.traffic import generate_fecs

SPEC_SIZES = (1, 4, 7)
GRANULARITIES = (Granularity.GROUP, Granularity.ROUTER, Granularity.INTERFACE)


def build_scenario(backbone, snapshot, atomic_count):
    if atomic_count == 1:
        return no_change(snapshot)
    regions = backbone.regions()
    shifts = []
    for index in range(atomic_count - 1):
        region_a = regions[index % len(regions)]
        region_b = regions[(index + 1) % len(regions)]
        shifts.append(
            (backbone.routers_in(region_a, "border"), backbone.routers_in(region_b, "border"))
        )
    return multi_shift(snapshot, shifts, change_id=f"sweep-{atomic_count}")


def test_fig7_granularity_sweep(benchmark, backbone):
    db = backbone.location_db()
    fecs = generate_fecs(backbone, max_classes=8)
    simulator = backbone.simulator()
    options = VerificationOptions(collect_counterexamples=False)

    matrix: dict[tuple[str, int], float] = {}
    for granularity in GRANULARITIES:
        snapshot = simulator.snapshot(
            fecs, name=f"pre-{granularity.value}", granularity=granularity
        )
        for atomic_count in SPEC_SIZES:
            scenario = build_scenario(backbone, snapshot, atomic_count)
            run_options = VerificationOptions(
                granularity=granularity, collect_counterexamples=False
            )
            started = time.perf_counter()
            report = verify_change(
                scenario.pre, scenario.post, scenario.spec, db=db, options=run_options
            )
            matrix[(granularity.value, atomic_count)] = time.perf_counter() - started
            assert report.holds

    # Benchmark one representative cell (router level, N=4), as a stable metric.
    router_snapshot = simulator.snapshot(fecs, name="pre-router", granularity=Granularity.ROUTER)
    scenario = build_scenario(backbone, router_snapshot, 4)
    benchmark(
        lambda: verify_change(scenario.pre, scenario.post, scenario.spec, db=db, options=options)
    )

    print()
    print("Figure 7 (reproduced): validation time [ms] by spec size and granularity")
    header = "  granularity    " + "".join(f"N={n:<8}" for n in SPEC_SIZES)
    print(header)
    for granularity in GRANULARITIES:
        row = f"  {granularity.value:<14}"
        for atomic_count in SPEC_SIZES:
            row += f"{matrix[(granularity.value, atomic_count)]*1000:8.1f}  "
        print(row)

    # Shape claims: time grows with spec size; interface level costs the most.
    for granularity in GRANULARITIES:
        assert matrix[(granularity.value, SPEC_SIZES[-1])] >= matrix[(granularity.value, 1)]
    for atomic_count in SPEC_SIZES:
        assert (
            matrix[(Granularity.INTERFACE.value, atomic_count)]
            >= matrix[(Granularity.ROUTER.value, atomic_count)]
        )
