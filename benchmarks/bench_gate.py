"""Gate-scoring overhead: risk assessment + decision as a fraction of sweep cost.

The ``repro gate`` subcommand is pure post-processing: it re-reads the
verification artifacts a sweep already produced (per-FEC verdicts,
contingency flips, unknown counters) and folds them into a
:class:`~repro.analytics.risk.RiskAssessment` plus a
:class:`~repro.analytics.gate.SafetyGateDecision`.  For a CI pipeline to
adopt the gate the scoring must be effectively free next to the
verification it wraps — this benchmark measures exactly that ratio and CI
holds it under an absolute ceiling (2% of sweep wall-clock; see
``check_perf_regression.py --gate``).

Method: run one CI-sized drain sweep (same workload family as
``bench_contingency_sweep.py`` but smaller by default so the bench job
stays cheap), then score the *same* sweep report repeatedly and take the
mean per-assessment cost.  Scoring is deterministic and side-effect free,
so repetition measures the real steady-state cost rather than cache warmup.

Environment knobs (all optional):

* ``GATE_FECS`` — classes per contingency snapshot (default 2000);
* ``GATE_ROUNDS`` — scoring repetitions to average over (default 50);
* ``GATE_JSON`` — write the measured record to this path, in the format
  ``benchmarks/check_perf_regression.py --gate`` consumes.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analytics import SafetyGate, assess_sweep, fec_region_index
from repro.verifier import single_link_failures
from repro.workloads.contingencies import (
    drain_sweep_scenario,
    interconnect_maintenance_sets,
)
from repro.workloads.scale import ScaleProfile, scale_backbone


@pytest.fixture(scope="module")
def gated_sweep():
    num_fecs = int(os.environ.get("GATE_FECS", "2000"))
    backbone = scale_backbone(ScaleProfile(num_fecs=num_fecs))
    scenario = drain_sweep_scenario(backbone, num_fecs=num_fecs)
    contingencies = single_link_failures(backbone.topology)
    contingencies += interconnect_maintenance_sets(backbone)

    started = time.perf_counter()
    sweep = scenario.sweep(contingencies).run()
    sweep_seconds = time.perf_counter() - started
    return backbone, scenario, sweep, sweep_seconds


def test_gate_scoring_overhead(gated_sweep):
    backbone, scenario, sweep, sweep_seconds = gated_sweep
    assert sweep.holds, sweep.summary()

    rounds = int(os.environ.get("GATE_ROUNDS", "50"))
    fec_regions = fec_region_index(
        scenario.fecs, location_regions=backbone.location_regions()
    )
    total_regions = len(backbone.regions())
    gate = SafetyGate()

    started = time.perf_counter()
    for _ in range(rounds):
        assessment = assess_sweep(
            sweep, fec_regions=fec_regions, total_regions=total_regions
        )
        decision = gate.decide(assessment)
    gate_seconds = (time.perf_counter() - started) / rounds

    assert decision.decision.value == "pass", decision.summary()
    gate_overhead_pct = gate_seconds / sweep_seconds * 100.0

    print()
    print(
        f"gate scoring: {sweep.contingencies} contingencies x "
        f"{sweep.results[0].report.total_fecs} FECs, {len(fec_regions)} region-mapped classes"
    )
    print(f"  sweep wall:    {sweep_seconds:.2f}s")
    print(f"  gate scoring:  {gate_seconds * 1000.0:.2f} ms/assessment ({rounds} rounds)")
    print(f"  gate overhead: {gate_overhead_pct:.3f}% of sweep wall-clock")

    # The adoption bar: scoring must stay a rounding error next to the
    # verification it wraps.  CI enforces the same ceiling from the
    # baseline file; this in-bench assert keeps local runs honest too.
    assert gate_overhead_pct < 2.0, (
        f"gate scoring overhead {gate_overhead_pct:.2f}% breaches the 2% ceiling"
    )

    json_path = os.environ.get("GATE_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "fec_count": sweep.results[0].report.total_fecs,
                    "contingencies": sweep.contingencies,
                    "rounds": rounds,
                    "sweep_seconds": sweep_seconds,
                    "gate_seconds": gate_seconds,
                    "gate_overhead_pct": gate_overhead_pct,
                    "decision": str(decision.decision),
                    "risk_score": decision.assessment.score,
                    "risk_tier": str(decision.assessment.tier),
                },
                handle,
                indent=2,
            )
