"""Section 9.1: expressiveness of the Rela language over change intents.

The paper finds Rela can fully express the data-plane intent of 97% of the
changes in its dataset; the remaining 3% need *path counting* (e.g. "at most
128 ECMP paths"), which the surface language cannot state.  We reproduce the
shape of that result: every archetype in the synthetic dataset is expressible
(its generator constructs a Rela spec for it), while a path-count intent has
no Rela spec and must fall back to a coarser approximation.
"""

from __future__ import annotations

from repro.workloads.changes import generate_change_dataset


#: Intents that exist in operator tickets but are outside Rela's language.
#: The generator cannot build a spec for them; they are listed here to keep
#: the bookkeeping honest (mirrors the paper's 3%).
UNSUPPORTED_INTENTS = ["limit ECMP fan-out of any flow to at most 128 paths"]


def measure_expressiveness(backbone, pre_snapshot):
    dataset = generate_change_dataset(backbone, pre_snapshot, count=40, seed=31)
    expressible = sum(1 for scenario in dataset if scenario.spec is not None)
    total = len(dataset) + len(UNSUPPORTED_INTENTS)
    return expressible, total


def test_expressiveness_fraction(benchmark, backbone, pre_snapshot):
    expressible, total = benchmark(measure_expressiveness, backbone, pre_snapshot)
    fraction = expressible / total

    print()
    print("Section 9.1 (reproduced): fraction of change intents expressible in Rela")
    print(f"  expressible: {expressible}/{total} = {fraction:.1%} (paper: 97%)")
    print(f"  unsupported intents: {UNSUPPORTED_INTENTS}")

    assert fraction >= 0.95
    assert fraction < 1.0
