"""Change-stream throughput: incremental sessions vs cold per-epoch runs.

The paper's operators validate change *sequences* — a maintenance window is
20 epochs of drains and restores, not 20 unrelated changes.  This benchmark
drives the rolling-drain stream (see :mod:`repro.workloads.stream`) two
ways over the same epochs:

* **incremental** — one :class:`~repro.verifier.session.VerificationSession`
  advanced through the stream: specs compile once, graphs intern once, and
  every recurring (spec, pre graph, post graph) combination is a verdict
  cache hit (restores land on previously seen states by construction);
* **cold** — independent ``verify_change`` calls per epoch, the pre-session
  workflow: every epoch repays spec compilation, interning and the full
  distinct-pair check cost.

Reported: epochs/sec for both arms, the incremental speedup (gated as a
lower bound in CI — losing the cross-epoch cache drops it to ~1x), the
session's cache hit rate and peak RSS.

Environment knobs (all optional):

* ``STREAM_FECS`` — classes in the initial snapshot (default 5000);
* ``STREAM_EPOCHS`` — epochs in the stream (default 20);
* ``STREAM_JSON`` — write the measured record to this path, in the format
  ``benchmarks/check_perf_regression.py --stream`` consumes.
"""

from __future__ import annotations

import json
import os
import resource
import time

import pytest

from repro.verifier import VerificationOptions, VerificationSession, verify_change
from repro.workloads.stream import StreamProfile, generate_stream


def _peak_rss_mb() -> float:
    # ru_maxrss is KiB on Linux (bytes on macOS; the benchmark targets Linux CI).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.fixture(scope="module")
def stream():
    num_fecs = int(os.environ.get("STREAM_FECS", "5000"))
    epochs = int(os.environ.get("STREAM_EPOCHS", "20"))
    # Nightly maintenance shape: the same region drains and restores every night
    # (rotation=1), so cycle 2 onward revisits known states — the regime the
    # session is built for.  Rotating more regions lowers the recurrence
    # rate and proportionally the cacheable share (see the workload tests).
    return generate_stream(
        StreamProfile(num_fecs=num_fecs, regions=10, epochs=epochs, rotation=1)
    )


def test_stream_incremental_vs_cold(stream):
    options = VerificationOptions(collect_counterexamples=False)

    started = time.perf_counter()
    session = VerificationSession(stream.initial, options=options)
    for epoch in stream:
        report = session.advance(epoch.post, epoch.spec)
        assert report.holds == epoch.expect_holds, epoch.epoch_id
    incremental_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for epoch in stream:
        report = verify_change(epoch.pre, epoch.post, epoch.spec, options=options)
        assert report.holds == epoch.expect_holds, epoch.epoch_id
    cold_seconds = time.perf_counter() - started

    cumulative = session.stream
    speedup = cold_seconds / incremental_seconds
    epochs = len(stream)
    print()
    print(
        f"stream throughput: {epochs} epochs x {len(stream.initial)} FECs "
        f"({stream.initial.distinct_graph_count()} distinct graphs)"
    )
    print(
        f"  incremental session: {incremental_seconds:.2f}s "
        f"({epochs / incremental_seconds:.1f} epochs/s), "
        f"{cumulative.executed_checks} executed / {cumulative.cached_checks} cached "
        f"of {cumulative.unique_checks} unique pair checks "
        f"({cumulative.cache_hit_rate:.0%} cache hits)"
    )
    print(
        f"  cold per-epoch:      {cold_seconds:.2f}s "
        f"({epochs / cold_seconds:.1f} epochs/s)"
    )
    print(f"  incremental speedup: {speedup:.1f}x")
    print(f"  peak RSS: {_peak_rss_mb():.0f} MB")

    # The acceptance bar: a 20-epoch rolling-drain stream verifies at least
    # 5x faster through a session than cold per epoch.
    assert speedup >= 5.0, f"incremental speedup {speedup:.2f}x below the 5x bar"
    # The cache, not luck: from cycle 2 on, epochs execute nothing.
    assert cumulative.cache_hit_rate > 0.5

    json_path = os.environ.get("STREAM_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "fec_count": len(stream.initial),
                    "epochs": epochs,
                    "incremental_seconds": incremental_seconds,
                    "cold_seconds": cold_seconds,
                    "incremental_speedup": speedup,
                    "epochs_per_sec": epochs / incremental_seconds,
                    "cache_hit_rate": cumulative.cache_hit_rate,
                    "unique_checks": cumulative.unique_checks,
                    "executed_checks": cumulative.executed_checks,
                    "peak_rss_mb": _peak_rss_mb(),
                },
                handle,
                indent=2,
            )


def test_stream_session_bounded_memory(stream):
    """A budgeted session stays within its graph budget across the stream."""
    options = VerificationOptions(collect_counterexamples=False)
    budget = stream.initial.distinct_graph_count() + 8
    session = VerificationSession(stream.initial, options=options, graph_budget=budget)
    high_water = 0
    for epoch in stream:
        report = session.advance(epoch.post, epoch.spec)
        assert report.holds == epoch.expect_holds, epoch.epoch_id
        high_water = max(high_water, len(session.store))
    # advance() compacts once the budget is crossed, so the store never
    # holds more than one epoch's growth past it.
    assert high_water <= budget + stream.initial.distinct_graph_count()
