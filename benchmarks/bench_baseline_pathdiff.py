"""Baseline comparison: manual path-diff auditing versus Rela (Sections 2.3, 8).

The manual workflow makes a human read every flow equivalence class whose
paths changed — tens to over 10,000 entries per change, mixing intended and
unintended differences.  Rela reports only violations, each labelled with the
violated sub-spec.  This benchmark measures both tools on the Figure 1
iterations and on a compliant synthetic change, and checks the qualitative
claims: the diff is never smaller than Rela's violation list, and for a
compliant change Rela reports nothing while the diff still needs auditing.
"""

from __future__ import annotations

from repro.baselines import differential_analysis
from repro.snapshots import path_diff
from repro.verifier import verify_change
from repro.workloads.changes import traffic_shift


def test_pathdiff_vs_rela_on_case_study(benchmark, figure1_scenario):
    scenario = figure1_scenario
    pre = scenario.pre_change()
    post = scenario.iteration_v2()

    diff = benchmark(lambda: path_diff(pre, post))
    report = verify_change(pre, post, scenario.refined_spec(), db=scenario.db)

    print()
    print("Manual audit workload vs. Rela output (Figure 1 iterations):")
    for name, snapshot, spec in [
        ("v1", scenario.iteration_v1(), scenario.change_spec()),
        ("v2", post, scenario.refined_spec()),
        ("final", scenario.final_implementation(), scenario.refined_spec()),
    ]:
        iteration_diff = path_diff(pre, snapshot)
        iteration_report = verify_change(pre, snapshot, spec, db=scenario.db)
        differential = differential_analysis(pre, snapshot)
        print(
            f"  {name:>5}: path diff {len(iteration_diff):>3} classes, "
            f"differential analysis {differential.audit_items:>3} items, "
            f"Rela violations {iteration_report.violating_fecs:>3}"
        )
        # Rela never asks the operator to look at more items than the diff,
        # and labels each one with the violated sub-spec.
        assert iteration_report.violating_fecs <= len(iteration_diff) + differential.audit_items

    # v2 specifics: the diff mixes 56 changed classes; Rela reports 39 labelled
    # violations and is silent about the intended/benign changes.
    assert len(diff) == 56
    assert report.violating_fecs == 39


def test_compliant_change_needs_no_audit(benchmark, backbone, pre_snapshot):
    db = backbone.location_db()
    scenario = traffic_shift(
        pre_snapshot,
        backbone.routers_in("R1", "border"),
        backbone.routers_in("R2", "border"),
        change_id="compliant-shift",
    )
    report = benchmark(
        lambda: verify_change(scenario.pre, scenario.post, scenario.spec, db=db)
    )
    diff = path_diff(scenario.pre, scenario.post)

    print()
    print(
        f"compliant traffic shift: path diff has {len(diff)} classes for a human to audit, "
        f"Rela reports {report.violating_fecs} violations"
    )
    assert report.holds
    assert report.violating_fecs == 0
    assert len(diff) > 0
