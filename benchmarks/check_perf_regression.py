#!/usr/bin/env python
"""Fail CI when benchmark results regress against the committed baseline.

Compares two measurement sources against the ``ci_baseline`` block of
``BENCH_fig6.json``:

* the Figure 6 CDF JSON written by ``bench_fig6_validation_time.py`` when
  ``FIG6_CDF_JSON`` is set (gated on the p80 quantile, per the paper's
  "80% of changes finish within ..." framing);
* a pytest-benchmark ``--benchmark-json`` results file (gated on each
  benchmark's median, for every benchmark name the baseline lists);
* the scale-throughput JSON written by ``bench_scale_throughput.py`` when
  ``SCALE_JSON`` is set (gated on FECs/sec — a *lower* bound, so losing the
  interned dedup-first path, which would divide throughput by orders of
  magnitude, fails the gate — and, when the baseline lists
  ``scale.max_guard_overhead_pct``, on the resilience guard overhead as an
  *absolute* ceiling: arming per-check deadlines/retries must stay ~free on
  the fault-free fast path);
* the stream-throughput JSON written by ``bench_stream_throughput.py`` when
  ``STREAM_JSON`` is set (gated on the incremental-vs-cold speedup as a hard
  lower bound — losing the session's cross-epoch verdict cache drops the
  speedup to ~1x — and on session epochs/sec within ``threshold``);
* the contingency-sweep JSON written by ``bench_contingency_sweep.py`` when
  ``SWEEP_JSON`` is set (gated on the sweep-wide dedup ratio as a hard
  lower bound — losing cross-contingency interning or the shared verdict
  cache collapses it toward 1x — on contingencies/sec within ``threshold``,
  on the sweep's resilience guard overhead when the baseline lists
  ``sweep.max_guard_overhead_pct``, and on the durability checkpoint's
  journaling overhead — another *absolute* ceiling — when it lists
  ``sweep.max_checkpoint_overhead_pct``);
* the k=2 sweep JSON written by ``bench_k2_sweep.py`` when
  ``SWEEP_K2_JSON`` is set (gated on the incremental-derivation ratio as a
  hard lower bound — losing the lattice's parent/sibling adoption collapses
  the from-baseline/incremental derive-seconds ratio toward 1x — on the
  k=2 dedup ratio as a hard floor, and on contingencies/sec within
  ``threshold``);
* the serve-throughput JSON written by ``bench_serve_throughput.py`` when
  ``SERVE_JSON`` is set (gated on the daemon-vs-fork-per-request speedup as
  a hard floor — losing shared-pool reuse collapses it toward 1x — on the
  structural pool counters as exact invariants (one pool created, zero
  rebuilds in steady state), and on sustained requests/sec and p99 latency
  within ``threshold``);
* the gate-overhead JSON written by ``bench_gate.py`` when ``GATE_JSON``
  is set (gated on gate scoring as a percentage of sweep wall-clock, an
  *absolute* ceiling like the guard overhead: risk assessment is pure
  post-processing over artifacts the sweep already produced, so anything
  past the ceiling means the analytics layer started re-running checks or
  re-deriving state).

A measurement regresses when it exceeds ``threshold`` times its baseline
(default 2x, absorbing CI-runner jitter while still catching an accidental
return to eager spec compilation, which is orders of magnitude slower);
throughput regresses when it falls below baseline divided by ``threshold``.

Usage::

    python benchmarks/check_perf_regression.py \
        --baseline BENCH_fig6.json \
        --cdf fig6_cdf.json \
        --benchmark-json bench-results.json \
        --scale scale-throughput.json \
        --stream stream-throughput.json \
        [--threshold 2.0]
"""

from __future__ import annotations

import argparse
import json
import sys


def load_json(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def check(name: str, measured: float, baseline: float, threshold: float) -> str | None:
    """Return a failure message when ``measured`` regresses, else ``None``."""
    allowed = baseline * threshold
    ratio = measured / baseline if baseline else float("inf")
    verdict = "OK" if measured <= allowed else "REGRESSION"
    print(
        f"  [{verdict}] {name}: measured {measured:.4g}, baseline {baseline:.4g}, "
        f"ratio {ratio:.2f}x (allowed {threshold:.1f}x)"
    )
    if measured > allowed:
        return f"{name} regressed {ratio:.2f}x over baseline (allowed {threshold:.1f}x)"
    return None


def check_lower_bound(
    name: str, measured: float, baseline: float, threshold: float
) -> str | None:
    """Gate a bigger-is-better metric: fail below ``baseline / threshold``."""
    floor = baseline / threshold
    ratio = measured / baseline if baseline else 0.0
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"  [{verdict}] {name}: measured {measured:.4g}, baseline {baseline:.4g}, "
        f"ratio {ratio:.2f}x (allowed >= 1/{threshold:.1f}x)"
    )
    if measured < floor:
        return (
            f"{name} dropped to {ratio:.2f}x of baseline "
            f"(allowed >= {1 / threshold:.2f}x)"
        )
    return None


def check_guard_overhead(
    kind: str, measured: dict, baseline: dict
) -> tuple[int, list[str]]:
    """Gate the resilience guard's fast-path overhead, when the baseline lists it.

    The ceiling (``max_guard_overhead_pct``) is absolute, deliberately NOT
    scaled by ``--threshold``: the measurement composes a calibrated
    per-check guard cost with the workload's own check counts, so it is
    deterministic — anything past the ceiling is real fast-path cost (e.g.
    the guard armed per FEC instead of per unique check).
    """
    max_overhead = baseline.get("max_guard_overhead_pct")
    if max_overhead is None:
        return 0, []
    overhead = measured.get("guard_overhead_pct")
    if overhead is None:
        print(
            f"  [MISSING] {kind} guard overhead: baseline gates "
            "max_guard_overhead_pct but measurement lacks guard_overhead_pct"
        )
        return 0, [
            f"{kind} guard_overhead_pct missing from measurement "
            "(baseline gates max_guard_overhead_pct)"
        ]
    verdict = "OK" if overhead <= max_overhead else "REGRESSION"
    print(
        f"  [{verdict}] {kind} resilience guard overhead: measured "
        f"{overhead:+.2f}%, ceiling {max_overhead:.1f}% (absolute)"
    )
    if overhead > max_overhead:
        return 1, [
            f"{kind} resilience guard overhead rose to {overhead:.2f}% "
            f"(ceiling {max_overhead:.1f}%)"
        ]
    return 1, []


def check_checkpoint_overhead(
    kind: str, measured: dict, baseline: dict
) -> tuple[int, list[str]]:
    """Gate the durability journal's cost, when the baseline lists a ceiling.

    Like the guard ceiling, ``max_checkpoint_overhead_pct`` is absolute and
    NOT scaled by ``--threshold``: checkpointing journals one record per
    completed unit, so its cost is structural — blowing the ceiling means
    the write path regressed (per-FEC journaling, lost flush batching,
    graphs pickled more than once), not that the machine was slow.
    """
    max_overhead = baseline.get("max_checkpoint_overhead_pct")
    if max_overhead is None:
        return 0, []
    overhead = measured.get("checkpoint_overhead_pct")
    if overhead is None:
        print(
            f"  [MISSING] {kind} checkpoint overhead: baseline gates "
            "max_checkpoint_overhead_pct but measurement lacks checkpoint_overhead_pct"
        )
        return 0, [
            f"{kind} checkpoint_overhead_pct missing from measurement "
            "(baseline gates max_checkpoint_overhead_pct)"
        ]
    verdict = "OK" if overhead <= max_overhead else "REGRESSION"
    print(
        f"  [{verdict}] {kind} checkpoint overhead: measured "
        f"{overhead:+.2f}%, ceiling {max_overhead:.1f}% (absolute)"
    )
    if overhead > max_overhead:
        return 1, [
            f"{kind} checkpoint overhead rose to {overhead:.2f}% "
            f"(ceiling {max_overhead:.1f}%)"
        ]
    return 1, []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", required=True, help="BENCH_fig6.json with a ci_baseline block"
    )
    parser.add_argument("--cdf", help="Figure 6 CDF JSON written via FIG6_CDF_JSON")
    parser.add_argument("--benchmark-json", help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--scale", help="scale-throughput JSON written via SCALE_JSON")
    parser.add_argument("--stream", help="stream-throughput JSON written via STREAM_JSON")
    parser.add_argument("--sweep", help="contingency-sweep JSON written via SWEEP_JSON")
    parser.add_argument("--sweep-k2", help="k=2 sweep JSON written via SWEEP_K2_JSON")
    parser.add_argument("--gate", help="gate-overhead JSON written via GATE_JSON")
    parser.add_argument("--serve", help="serve-throughput JSON written via SERVE_JSON")
    parser.add_argument("--threshold", type=float, default=2.0, help="allowed slowdown factor")
    args = parser.parse_args(argv)

    baseline = load_json(args.baseline).get("ci_baseline")
    if not baseline:
        print(f"error: {args.baseline} has no ci_baseline block", file=sys.stderr)
        return 2

    failures: list[str] = []
    compared = 0
    print(f"Perf regression gate (threshold {args.threshold:.1f}x)")

    if args.cdf:
        measured_cdf = load_json(args.cdf)
        baseline_cdf = baseline.get("fig6_cdf_ms", {})
        baseline_p80 = baseline_cdf.get("p80")
        if baseline_p80 is None:
            print("error: baseline has no fig6_cdf_ms.p80", file=sys.stderr)
            return 2
        baseline_count = baseline_cdf.get("count")
        if baseline_count is not None and measured_cdf.get("count") != baseline_count:
            # A FIG6_LIMIT-truncated sweep measures a different population;
            # its quantiles are not comparable to the full-dataset baseline.
            print(
                f"error: CDF population mismatch: measured count "
                f"{measured_cdf.get('count')}, baseline expects {baseline_count} "
                "(was FIG6_LIMIT set?)",
                file=sys.stderr,
            )
            return 2
        failure = check("fig6 CDF p80 (ms)", measured_cdf["p80_ms"], baseline_p80, args.threshold)
        compared += 1
        if failure:
            failures.append(failure)

    if args.benchmark_json:
        results = load_json(args.benchmark_json)
        baseline_medians: dict[str, float] = baseline.get("benchmarks_median_s", {})
        measured_by_name = {entry["name"]: entry for entry in results.get("benchmarks", [])}
        for name, baseline_median in sorted(baseline_medians.items()):
            entry = measured_by_name.get(name)
            if entry is None:
                failures.append(f"baseline benchmark {name!r} missing from results")
                print(f"  [MISSING] {name}: not found in {args.benchmark_json}")
                continue
            failure = check(
                f"{name} median (s)", entry["stats"]["median"], baseline_median, args.threshold
            )
            compared += 1
            if failure:
                failures.append(failure)

    if args.scale:
        measured_scale = load_json(args.scale)
        baseline_scale = baseline.get("scale", {})
        baseline_throughput = baseline_scale.get("fecs_per_sec")
        if baseline_throughput is None:
            print("error: baseline has no scale.fecs_per_sec", file=sys.stderr)
            return 2
        baseline_population = baseline_scale.get("fec_count")
        population = measured_scale.get("fec_count")
        if baseline_population is not None and population != baseline_population:
            # Throughput over a different population is not comparable (the
            # fixed setup cost amortizes differently).
            print(
                f"error: scale population mismatch: measured fec_count "
                f"{measured_scale.get('fec_count')}, baseline expects "
                f"{baseline_population} (was SCALE_FECS set?)",
                file=sys.stderr,
            )
            return 2
        failure = check_lower_bound(
            "scale throughput (FECs/sec)",
            measured_scale["fecs_per_sec"],
            baseline_throughput,
            args.threshold,
        )
        compared += 1
        if failure:
            failures.append(failure)
        guard_compared, guard_failures = check_guard_overhead(
            "scale", measured_scale, baseline_scale
        )
        compared += guard_compared
        failures.extend(guard_failures)

    if args.stream:
        measured_stream = load_json(args.stream)
        baseline_stream = baseline.get("stream", {})
        min_speedup = baseline_stream.get("min_incremental_speedup")
        if min_speedup is None:
            print("error: baseline has no stream.min_incremental_speedup", file=sys.stderr)
            return 2
        for axis in ("fec_count", "epochs"):
            expected = baseline_stream.get(axis)
            if expected is not None and measured_stream.get(axis) != expected:
                # A different population or stream length amortizes the fixed
                # per-epoch cost differently; the speedup is not comparable.
                print(
                    f"error: stream population mismatch: measured {axis} "
                    f"{measured_stream.get(axis)}, baseline expects {expected} "
                    "(were STREAM_FECS/STREAM_EPOCHS set?)",
                    file=sys.stderr,
                )
                return 2
        speedup = measured_stream["incremental_speedup"]
        verdict = "OK" if speedup >= min_speedup else "REGRESSION"
        print(
            f"  [{verdict}] stream incremental speedup: measured {speedup:.2f}x, "
            f"required >= {min_speedup:.1f}x (hard floor)"
        )
        compared += 1
        if speedup < min_speedup:
            failures.append(
                f"stream incremental speedup fell to {speedup:.2f}x "
                f"(required >= {min_speedup:.1f}x)"
            )
        baseline_eps = baseline_stream.get("epochs_per_sec")
        if baseline_eps is not None:
            failure = check_lower_bound(
                "stream session throughput (epochs/sec)",
                measured_stream["epochs_per_sec"],
                baseline_eps,
                args.threshold,
            )
            compared += 1
            if failure:
                failures.append(failure)

    if args.sweep:
        measured_sweep = load_json(args.sweep)
        baseline_sweep = baseline.get("sweep", {})
        min_ratio = baseline_sweep.get("min_dedup_ratio")
        if min_ratio is None:
            print("error: baseline has no sweep.min_dedup_ratio", file=sys.stderr)
            return 2
        for axis in ("fec_count", "contingencies"):
            expected = baseline_sweep.get(axis)
            if expected is not None and measured_sweep.get(axis) != expected:
                # A different population or failure-model size exhibits a
                # different dedup regime; the ratio is not comparable.
                print(
                    f"error: sweep population mismatch: measured {axis} "
                    f"{measured_sweep.get(axis)}, baseline expects {expected} "
                    "(was SWEEP_FECS set?)",
                    file=sys.stderr,
                )
                return 2
        ratio = measured_sweep["dedup_ratio"]
        verdict = "OK" if ratio >= min_ratio else "REGRESSION"
        print(
            f"  [{verdict}] sweep dedup ratio: measured {ratio:.2f}x, "
            f"required >= {min_ratio:.1f}x (hard floor)"
        )
        compared += 1
        if ratio < min_ratio:
            failures.append(
                f"sweep dedup ratio fell to {ratio:.2f}x (required >= {min_ratio:.1f}x)"
            )
        baseline_cps = baseline_sweep.get("contingencies_per_sec")
        if baseline_cps is not None:
            failure = check_lower_bound(
                "sweep throughput (contingencies/sec)",
                measured_sweep["contingencies_per_sec"],
                baseline_cps,
                args.threshold,
            )
            compared += 1
            if failure:
                failures.append(failure)
        guard_compared, guard_failures = check_guard_overhead(
            "sweep", measured_sweep, baseline_sweep
        )
        compared += guard_compared
        failures.extend(guard_failures)
        ckpt_compared, ckpt_failures = check_checkpoint_overhead(
            "sweep", measured_sweep, baseline_sweep
        )
        compared += ckpt_compared
        failures.extend(ckpt_failures)

    if args.sweep_k2:
        measured_k2 = load_json(args.sweep_k2)
        baseline_k2 = baseline.get("sweep_k2", {})
        min_derive_ratio = baseline_k2.get("min_derive_ratio")
        if min_derive_ratio is None:
            print("error: baseline has no sweep_k2.min_derive_ratio", file=sys.stderr)
            return 2
        for axis in ("fec_count", "contingencies"):
            expected = baseline_k2.get(axis)
            if expected is not None and measured_k2.get(axis) != expected:
                # A different failure-model or traffic-matrix size changes
                # how the marginal slices overlap; the ratio is only
                # meaningful against the shape it was calibrated on.
                print(
                    f"error: sweep-k2 population mismatch: measured {axis} "
                    f"{measured_k2.get(axis)}, baseline expects {expected} "
                    "(was SWEEP_K2_REGIONS set?)",
                    file=sys.stderr,
                )
                return 2
        derive_ratio = measured_k2["derive_ratio"]
        # Hard floor, NOT threshold-scaled: both derivation arms run
        # back-to-back on the same machine over byte-identical work, so the
        # ratio is machine-relative — losing parent/sibling adoption (or
        # the changed-router delta index) collapses it toward 1x.
        verdict = "OK" if derive_ratio >= min_derive_ratio else "REGRESSION"
        print(
            f"  [{verdict}] k=2 incremental derive ratio: measured "
            f"{derive_ratio:.2f}x, required >= {min_derive_ratio:.1f}x (hard floor)"
        )
        compared += 1
        if derive_ratio < min_derive_ratio:
            failures.append(
                f"k=2 incremental derive ratio fell to {derive_ratio:.2f}x "
                f"(required >= {min_derive_ratio:.1f}x)"
            )
        min_k2_dedup = baseline_k2.get("min_dedup_ratio")
        if min_k2_dedup is not None:
            dedup = measured_k2["dedup_ratio"]
            verdict = "OK" if dedup >= min_k2_dedup else "REGRESSION"
            print(
                f"  [{verdict}] k=2 sweep dedup ratio: measured {dedup:.2f}x, "
                f"required >= {min_k2_dedup:.1f}x (hard floor)"
            )
            compared += 1
            if dedup < min_k2_dedup:
                failures.append(
                    f"k=2 sweep dedup ratio fell to {dedup:.2f}x "
                    f"(required >= {min_k2_dedup:.1f}x)"
                )
        baseline_k2_cps = baseline_k2.get("contingencies_per_sec")
        if baseline_k2_cps is not None:
            failure = check_lower_bound(
                "k=2 sweep throughput (contingencies/sec)",
                measured_k2["contingencies_per_sec"],
                baseline_k2_cps,
                args.threshold,
            )
            compared += 1
            if failure:
                failures.append(failure)

    if args.gate:
        measured_gate = load_json(args.gate)
        baseline_gate = baseline.get("gate", {})
        max_overhead = baseline_gate.get("max_gate_overhead_pct")
        if max_overhead is None:
            print("error: baseline has no gate.max_gate_overhead_pct", file=sys.stderr)
            return 2
        for axis in ("fec_count", "contingencies"):
            expected = baseline_gate.get(axis)
            if expected is not None and measured_gate.get(axis) != expected:
                # Scoring cost is relative to the sweep's wall-clock, which a
                # different population changes; the percentage is only
                # meaningful against the population it was calibrated on.
                print(
                    f"error: gate population mismatch: measured {axis} "
                    f"{measured_gate.get(axis)}, baseline expects {expected} "
                    "(was GATE_FECS set?)",
                    file=sys.stderr,
                )
                return 2
        overhead = measured_gate["gate_overhead_pct"]
        # Absolute ceiling, deliberately NOT scaled by --threshold: scoring
        # is deterministic post-processing, so crossing the ceiling is real
        # added work in the analytics layer, not runner jitter.
        verdict = "OK" if overhead <= max_overhead else "REGRESSION"
        print(
            f"  [{verdict}] gate scoring overhead: measured {overhead:.3f}% "
            f"of sweep wall-clock, ceiling {max_overhead:.1f}% (absolute)"
        )
        compared += 1
        if overhead > max_overhead:
            failures.append(
                f"gate scoring overhead rose to {overhead:.3f}% "
                f"(ceiling {max_overhead:.1f}%)"
            )

    if args.serve:
        measured_serve = load_json(args.serve)
        baseline_serve = baseline.get("serve", {})
        min_speedup = baseline_serve.get("min_fork_speedup")
        if min_speedup is None:
            print("error: baseline has no serve.min_fork_speedup", file=sys.stderr)
            return 2
        for axis in ("tenants", "epochs"):
            expected = baseline_serve.get(axis)
            if expected is not None and measured_serve.get(axis) != expected:
                # Throughput over a different client population amortizes
                # per-request overhead differently; not comparable.
                print(
                    f"error: serve population mismatch: measured {axis} "
                    f"{measured_serve.get(axis)}, baseline expects {expected} "
                    "(were SERVE_TENANTS/SERVE_EPOCHS set?)",
                    file=sys.stderr,
                )
                return 2
        speedup = measured_serve["fork_speedup"]
        # Hard floor, NOT threshold-scaled: both arms run on the same
        # machine back-to-back, so the ratio is machine-relative -- losing
        # pool reuse (a rebuild per request) collapses it toward 1x.
        verdict = "OK" if speedup >= min_speedup else "REGRESSION"
        print(
            f"  [{verdict}] serve vs fork-per-request speedup: measured "
            f"{speedup:.2f}x, required >= {min_speedup:.1f}x (hard floor)"
        )
        compared += 1
        if speedup < min_speedup:
            failures.append(
                f"serve fork-per-request speedup fell to {speedup:.2f}x "
                f"(required >= {min_speedup:.1f}x)"
            )
        # Structural pool-reuse invariants: exact, not thresholds.  A
        # steady-state daemon builds its pool once and never rebuilds it.
        pools = measured_serve.get("pools_created")
        rebuilds = measured_serve.get("pool_rebuilds")
        pool_ok = pools == 1 and rebuilds == 0
        verdict = "OK" if pool_ok else "REGRESSION"
        print(
            f"  [{verdict}] serve pool reuse: pools_created {pools} "
            f"(expected 1), pool_rebuilds {rebuilds} (expected 0)"
        )
        compared += 1
        if not pool_ok:
            failures.append(
                f"serve pool reuse broke: pools_created={pools}, "
                f"pool_rebuilds={rebuilds} (steady state must be 1/0)"
            )
        baseline_rps = baseline_serve.get("rps")
        if baseline_rps is not None:
            failure = check_lower_bound(
                "serve sustained throughput (requests/sec)",
                measured_serve["rps"],
                baseline_rps,
                args.threshold,
            )
            compared += 1
            if failure:
                failures.append(failure)
        baseline_p99 = baseline_serve.get("p99_ms")
        if baseline_p99 is not None:
            failure = check(
                "serve p99 latency (ms)",
                measured_serve["p99_ms"],
                baseline_p99,
                args.threshold,
            )
            compared += 1
            if failure:
                failures.append(failure)

    if compared == 0:
        print(
            "error: nothing compared "
            "(pass --cdf, --benchmark-json, --scale, --stream, --sweep, "
            "--sweep-k2, --gate and/or --serve)",
            file=sys.stderr,
        )
        return 2

    if failures:
        print(f"\n{len(failures)} perf regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} measurements within {args.threshold:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
