#!/usr/bin/env python
"""Print one dev-extra requirement from pyproject.toml (the version pin's
single source of truth).

CI jobs install pinned tools with::

    pip install "$(python scripts/dev_requirement.py ruff)"

so the workflow never carries its own copy of a version that
``pyproject.toml`` already pins.
"""

from __future__ import annotations

import re
import sys
import tomllib
from pathlib import Path


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: dev_requirement.py <distribution-name>", file=sys.stderr)
        return 2
    name = argv[0].lower()
    pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
    with open(pyproject, "rb") as handle:
        dev = tomllib.load(handle)["project"]["optional-dependencies"]["dev"]
    for requirement in dev:
        requirement_name = re.split(r"[<>=~!\[ ]", requirement, maxsplit=1)[0]
        if requirement_name.lower() == name:
            print(requirement)
            return 0
    print(f"error: no dev requirement named {name!r} in {pyproject}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
