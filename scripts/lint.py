#!/usr/bin/env python
"""Local lint entry point (``make lint``): ruff when available, mechanical
fallback otherwise.

CHANGES.md records that PRs 2-4 could not run ruff inside the offline dev
container at all, leaving formatting verifiable only in CI.  This script
closes that gap:

* with ruff installed (``pip install -e .[dev]``, version pinned in
  pyproject.toml) it runs the exact CI lint job: ``ruff check`` plus
  ``ruff format --check`` over src/tests/benchmarks/scripts;
* without ruff it falls back to the mechanical invariants the formatter
  guarantees and that past PRs verified by hand — no tabs in code, no
  trailing whitespace, no CRLF line endings — and *warns* (not fails)
  about >100-column code lines, since a handful of atomic strings
  legitimately exceed the limit and ``E501`` is disabled in ruff's config
  too.

Exit status: 0 clean, 1 violations, 2 usage/environment errors.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGETS = ("src", "tests", "benchmarks", "scripts")
LINE_LIMIT = 100


def run_ruff() -> int:
    commands = [
        ["ruff", "check", *TARGETS],
        ["ruff", "format", "--check", *TARGETS],
    ]
    status = 0
    for command in commands:
        print(f"$ {' '.join(command)}")
        result = subprocess.run(command, cwd=REPO_ROOT)
        status = status or result.returncode
    return status


def run_fallback() -> int:
    print(
        "ruff is not installed (pip install -e .[dev] when the network allows); "
        "running the mechanical fallback checks"
    )
    failures = 0
    warnings = 0
    for target in TARGETS:
        for path in sorted((REPO_ROOT / target).rglob("*.py")):
            relative = path.relative_to(REPO_ROOT)
            raw = path.read_bytes()
            if b"\r\n" in raw:
                print(f"{relative}: CRLF line endings")
                failures += 1
            for number, line in enumerate(raw.decode("utf-8").splitlines(), start=1):
                if "\t" in line:
                    print(f"{relative}:{number}: tab character")
                    failures += 1
                if line != line.rstrip():
                    print(f"{relative}:{number}: trailing whitespace")
                    failures += 1
                stripped = line.strip()
                if len(line) > LINE_LIMIT and not stripped.startswith("#"):
                    print(f"{relative}:{number}: warning: line over {LINE_LIMIT} columns")
                    warnings += 1
    if failures:
        print(f"\n{failures} mechanical violation(s)")
        return 1
    print(f"\nmechanical checks clean ({warnings} long-line warning(s), non-fatal)")
    return 0


def main() -> int:
    if shutil.which("ruff"):
        return run_ruff()
    return run_fallback()


if __name__ == "__main__":
    sys.exit(main())
