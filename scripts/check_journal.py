#!/usr/bin/env python3
"""Validate a ``repro-journal/v1`` file without importing ``repro``.

CI's durability job runs this over the checkpoint and state journals the
workloads produce, asserting the on-disk format honours its spec from the
outside — magic line, 8-byte little-endian ``(length, CRC-32)`` frames,
JSON/pickle payload tags, a JSON header record first:

    python scripts/check_journal.py sweep.ckpt --expect-kind sweep

Checks performed:

* the file starts with the ``repro-journal/v1`` magic line;
* every frame's length fits the file and its CRC-32 matches its payload;
* payload tags are only ``J`` (JSON, which must parse) or ``P`` (pickle,
  CRC-checked but deliberately never unpickled — this script must work
  with nothing but the stdlib, and unpickling would import ``repro``);
* the first record is a JSON header ``{"record": "header", "kind": ...,
  "format": 1, "signature": ...}`` with a known kind;
* JSON records carry a known ``record`` type for the journal's kind;
* the file has no trailing bytes past the last valid frame (a torn tail
  is a *recoverable* state for the library, but a journal that a run
  closed cleanly must not have one — pass ``--allow-torn-tail`` when
  checking a deliberately crashed run's leftovers).

Exits 0 when every check passes, 1 with a list of failures otherwise.
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
from pathlib import Path
from zlib import crc32

MAGIC = b"repro-journal/v1\n"
FORMAT_VERSION = 1
FRAME = struct.Struct("<II")
TAG_JSON = b"J"
TAG_PICKLE = b"P"
KINDS = ("sweep", "stream", "state")
#: JSON record types that may legitimately appear after the header.
JSON_RECORDS = ("interrupt", "outcome")


def check(data: bytes, *, expect_kind: str | None, allow_torn_tail: bool) -> tuple[list[str], dict]:
    """Validate one journal's bytes: (failures, summary-stats)."""
    failures: list[str] = []
    stats = {"kind": None, "records": 0, "json_records": 0, "pickle_records": 0, "torn_bytes": 0}
    if not data.startswith(MAGIC):
        return [f"missing journal magic {MAGIC!r}"], stats

    offset = len(MAGIC)
    first = True
    while offset < len(data):
        if offset + FRAME.size > len(data):
            stats["torn_bytes"] = len(data) - offset
            break
        length, checksum = FRAME.unpack_from(data, offset)
        start = offset + FRAME.size
        end = start + length
        if length == 0 or end > len(data):
            stats["torn_bytes"] = len(data) - offset
            break
        payload = data[start:end]
        if crc32(payload) != checksum:
            stats["torn_bytes"] = len(data) - offset
            break
        tag, body = payload[:1], payload[1:]
        if tag == TAG_JSON:
            stats["json_records"] += 1
            try:
                record = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                failures.append(f"record at byte {offset}: CRC-valid but not JSON: {error}")
                record = None
            if first:
                failures.extend(_check_header(record, offset, expect_kind, stats))
            elif isinstance(record, dict) and record.get("record") not in JSON_RECORDS:
                failures.append(
                    f"record at byte {offset}: unknown JSON record type "
                    f"{record.get('record')!r} (expected one of {JSON_RECORDS})"
                )
        elif tag == TAG_PICKLE:
            stats["pickle_records"] += 1
            if first:
                failures.append(f"first record at byte {offset} is pickled, header must be JSON")
        else:
            failures.append(f"record at byte {offset}: unknown payload tag {tag!r}")
        first = False
        stats["records"] += 1
        offset = end

    if stats["records"] == 0:
        failures.append("journal has no complete records (not even a header)")
    if stats["torn_bytes"] and not allow_torn_tail:
        failures.append(
            f"{stats['torn_bytes']} torn/corrupt trailing bytes — a cleanly "
            "closed journal must end on a record boundary "
            "(use --allow-torn-tail for crashed-run leftovers)"
        )
    return failures, stats


def _check_header(record, offset: int, expect_kind: str | None, stats: dict) -> list[str]:
    failures: list[str] = []
    if not isinstance(record, dict) or record.get("record") != "header":
        return [f"first record at byte {offset} is not a header record: {record!r}"]
    kind = record.get("kind")
    stats["kind"] = kind
    if kind not in KINDS:
        failures.append(f"header kind must be one of {KINDS}, got {kind!r}")
    if expect_kind is not None and kind != expect_kind:
        failures.append(f"expected a {expect_kind!r} journal, got {kind!r}")
    if record.get("format") != FORMAT_VERSION:
        failures.append(f"header format must be {FORMAT_VERSION}, got {record.get('format')!r}")
    if not isinstance(record.get("signature"), str) or not record["signature"]:
        signature = record.get("signature")
        failures.append(f"header signature must be a non-empty string, got {signature!r}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("journal", help="the repro-journal/v1 file to validate")
    parser.add_argument(
        "--expect-kind",
        choices=KINDS,
        default=None,
        help="fail unless the header's kind is exactly this",
    )
    parser.add_argument(
        "--min-records",
        type=int,
        default=1,
        help="fail unless at least this many complete records exist (default 1, the header)",
    )
    parser.add_argument(
        "--allow-torn-tail",
        action="store_true",
        help="tolerate torn/corrupt trailing bytes (checking a crashed run's journal)",
    )
    args = parser.parse_args(argv)

    try:
        data = Path(args.journal).read_bytes()
    except OSError as error:
        print(f"FAIL: cannot read journal: {error}", file=sys.stderr)
        return 1

    failures, stats = check(
        data, expect_kind=args.expect_kind, allow_torn_tail=args.allow_torn_tail
    )
    if stats["records"] < args.min_records:
        failures.append(f"expected at least {args.min_records} records, found {stats['records']}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: {args.journal} — kind={stats['kind']} records={stats['records']} "
        f"(json={stats['json_records']}, pickle={stats['pickle_records']}, "
        f"torn_bytes={stats['torn_bytes']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
