#!/usr/bin/env python3
"""CI durability check: kill a checkpointed sweep mid-run, resume, compare.

The end-to-end crash-resume differential at CI size, self-contained in one
script (CI invokes no pytest here):

1. run a seeded contingency sweep to completion — the control report;
2. re-run it checkpointed in a child process that SIGKILLs itself while
   recording a seeded unit (optionally mid-``write(2)``, leaving a torn
   frame on disk);
3. validate the crashed journal's framing with the stdlib checker
   (``scripts/check_journal.py --allow-torn-tail``);
4. resume from the crashed journal and require the resumed report to match
   the control fact-for-fact — verdicts, counterexamples, dedup counters;
5. repeat for ``--kill-points`` seeded crash sites.

Usage (CI)::

    PYTHONPATH=src python scripts/durability_check.py --kill-points 20

Exits 0 when every resumed report matches, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import random
import signal
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.persist.checkpoint import Checkpoint  # noqa: E402
from repro.persist.journal import TAG_PICKLE, _encode  # noqa: E402
from repro.rela.locations import Granularity  # noqa: E402
from repro.verifier import single_link_failures  # noqa: E402
from repro.workloads.backbone import BackboneParams, generate_backbone  # noqa: E402
from repro.workloads.contingencies import drain_sweep_scenario  # noqa: E402

#: The CI-sized seeded workload (identical in every process involved).
PARAMS = BackboneParams(
    regions=3, routers_per_group=2, parallel_links=2, prefixes_per_region=3
)
NUM_FECS = 240
CANDIDATE_BUNDLES = 8


def build_sweep():
    backbone = generate_backbone(PARAMS)
    scenario = drain_sweep_scenario(
        backbone, num_fecs=NUM_FECS, granularity=Granularity.ROUTER, buggy=True
    )
    contingencies = single_link_failures(
        backbone.topology,
        candidates=backbone.topology.link_bundles()[:CANDIDATE_BUNDLES],
    )
    return scenario, contingencies


def sweep_facts(sweep) -> dict:
    return {
        "ids": [result.contingency.contingency_id for result in sweep.results],
        "holds": [result.holds for result in sweep.results],
        "violating": [result.report.violating_fecs for result in sweep.results],
        "counterexamples": [
            [
                (ce.fec_id, sorted(v.branch for v in ce.violations))
                for ce in result.report.counterexamples
            ]
            for result in sweep.results
        ],
        "unknown": [result.report.unknown_fec_ids for result in sweep.results],
        "naive_checks": sweep.naive_checks,
        "executed_checks": sweep.executed_checks,
        "cached_checks": sweep.cached_checks,
        "distinct_graphs": sweep.distinct_graphs,
    }


def run_child(path: str, kill_after: int, tear: int) -> int:
    """Child mode: run the checkpointed sweep, SIGKILL self at the kill site."""
    original = Checkpoint.record_unit
    state = {"count": 0}

    def killing_record(self, index, unit_id, *, degraded=False, **payload):
        if state["count"] == kill_after:
            if tear > 0:
                record = {
                    "record": "unit",
                    "index": index,
                    "id": unit_id,
                    "degraded": degraded,
                }
                if not degraded:
                    record.update(payload)
                frame = _encode(TAG_PICKLE, pickle.dumps(record))
                self._writer._handle.write(frame[: min(tear, len(frame) - 1)])
                self._writer._handle.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        state["count"] += 1
        return original(self, index, unit_id, degraded=degraded, **payload)

    Checkpoint.record_unit = killing_record
    scenario, contingencies = build_sweep()
    scenario.sweep(contingencies).run(checkpoint=path)
    return 86  # surviving the kill site means the harness is broken


def check_journal(path: Path, *, allow_torn_tail: bool) -> None:
    args = [sys.executable, str(REPO_ROOT / "scripts" / "check_journal.py"), str(path)]
    args += ["--expect-kind", "sweep"]
    if allow_torn_tail:
        args.append("--allow-torn-tail")
    subprocess.run(args, check=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", metavar="PATH", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--kill-after", type=int, default=0, help=argparse.SUPPRESS)
    parser.add_argument("--tear", type=int, default=0, help=argparse.SUPPRESS)
    parser.add_argument(
        "--kill-points",
        type=int,
        default=int(os.environ.get("DURABILITY_SEEDS", "3")),
        help="number of seeded crash sites to exercise (default: $DURABILITY_SEEDS or 3)",
    )
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument(
        "--workdir", default=None, help="where journals are written (default: a temp dir)"
    )
    args = parser.parse_args(argv)

    if args.child is not None:
        return run_child(args.child, args.kill_after, args.tear)

    import tempfile

    workdir = Path(args.workdir) if args.workdir else Path(tempfile.mkdtemp(prefix="durability-"))
    workdir.mkdir(parents=True, exist_ok=True)

    scenario, contingencies = build_sweep()
    units = len(contingencies) + 1  # the sweep prepends a baseline contingency
    print(f"control: sweeping {units} contingencies x {NUM_FECS} FECs ...", flush=True)
    control = sweep_facts(scenario.sweep(contingencies).run())

    rng = random.Random(args.seed)
    failures = 0
    for trial in range(args.kill_points):
        kill_after = rng.randrange(units)
        tear = rng.choice([0, 0, rng.randrange(1, 2048)])
        path = workdir / f"crash-{trial}.ckpt"
        print(
            f"trial {trial}: kill -9 after {kill_after}/{units} units "
            f"(torn bytes: {tear}) ...",
            flush=True,
        )
        child = subprocess.run(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--child",
                str(path),
                "--kill-after",
                str(kill_after),
                "--tear",
                str(tear),
            ],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        if child.returncode != -signal.SIGKILL:
            print(f"FAIL: child survived its SIGKILL (rc={child.returncode})", file=sys.stderr)
            failures += 1
            continue
        check_journal(path, allow_torn_tail=True)
        resumed = sweep_facts(
            scenario.sweep(contingencies).run(checkpoint=path, resume=True)
        )
        check_journal(path, allow_torn_tail=False)  # the resumed run closed it cleanly
        if resumed != control:
            print(
                f"FAIL: trial {trial} resumed report diverged from control:\n"
                f"  control: {json.dumps(control, sort_keys=True)[:400]}\n"
                f"  resumed: {json.dumps(resumed, sort_keys=True)[:400]}",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(f"trial {trial}: resumed report matches control")

    if failures:
        print(f"FAIL: {failures}/{args.kill_points} crash-resume trials diverged", file=sys.stderr)
        return 1
    print(f"OK: {args.kill_points} crash-resume trials, all byte-identical to control")
    return 0


if __name__ == "__main__":
    sys.exit(main())
