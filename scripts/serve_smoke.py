#!/usr/bin/env python
"""End-to-end smoke of the verification daemon, as the docs describe it.

Starts ``repro serve`` as a real child process on a kernel-chosen
loopback port, checks ``/healthz``, runs one stateless ``/v1/verify``
round-trip, then SIGTERMs the daemon and requires a clean drain
(exit 0).  This is the docs-job companion to the full serve suite: it
proves the README "Run as a service" workflow works from a cold start
with nothing but the repo checkout.

Exit status: 0 on success, 1 on any failed step.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import protocol  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.verifier import verify_change  # noqa: E402
from repro.workloads.backbone import BackboneParams, generate_backbone  # noqa: E402
from repro.workloads.stream import rolling_drain_stream  # noqa: E402
from repro.workloads.traffic import generate_fecs  # noqa: E402


def start_daemon() -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(f"daemon exited during startup: {process.poll()}")
        if line.startswith("serving on "):
            return process, line.split("serving on ", 1)[1].strip()
    process.kill()
    raise SystemExit("daemon did not report its endpoint in time")


def main() -> int:
    backbone = generate_backbone(
        BackboneParams(
            regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2
        )
    )
    fecs = generate_fecs(backbone)
    initial = backbone.simulator().snapshot(fecs, name="initial")
    epoch = rolling_drain_stream(backbone, initial, epochs=1, rotation=2, seed=7).epochs[0]

    process, base_url = start_daemon()
    try:
        client = ServeClient(base_url)
        health = client.healthz()
        assert health.status == 200 and health.payload["status"] == "ok", health.payload
        print(f"healthz ok at {base_url}")

        response = client.verify(
            {
                "pre": {"data": initial.to_dict()},
                "post": {"data": epoch.post.to_dict()},
                "spec": protocol.pickle_b64(epoch.spec),
            }
        )
        assert response.status == 200, response.payload
        served = response.payload["report"]
        direct = protocol.encode_report(verify_change(initial, epoch.post, epoch.spec))
        wire = protocol.canonical_json(protocol.strip_timing(served))
        local = protocol.canonical_json(protocol.strip_timing(direct))
        assert wire == local, "served report diverged from the in-process path"
        print(f"verify ok: holds={served['holds']} checks={served['unique_checks']}")
    finally:
        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=60)
    assert code == 0, f"daemon drain exited {code}"
    print("drain ok: exit 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
