#!/usr/bin/env python3
"""Validate a ``repro gate --json`` document (the repro-gate/v1 schema).

CI's gate job pipes the gate's JSON output into this script to assert that
the machine-readable contract holds before anything downstream scripts
against it:

    code=0; python -m repro.cli gate --json sweep ... > gate.json || code=$?
    python scripts/check_gate_output.py gate.json \
        --expect-decision pass --expect-exit "$code"

Checks performed:

* the document parses and carries ``schema: repro-gate/v1``;
* every required field is present with the right shape (decision in the
  four-way vocabulary, exit_code consistent with the decision, reasons a
  non-empty list of strings, risk block with tier/score/signals);
* the risk score is in [0, 1] and the tier matches its score band;
* ``--expect-decision``/``--expect-exit``, when given, match the document
  (``--expect-exit`` doubles as a check that the CLI's actual exit code
  agrees with the one recorded in the JSON).

Exits 0 when every check passes, 1 with a list of failures otherwise.
Stdlib only — CI runs it before any dev dependency is installed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DECISIONS = ("pass", "conditional", "hold", "block")
DECISION_EXIT_CODES = {"pass": 0, "conditional": 3, "hold": 5, "block": 5}
TIERS = ("negligible", "low", "moderate", "high", "critical")
#: Score floors for each tier above ``negligible`` (mirrors repro.analytics.risk).
TIER_FLOORS = (("critical", 0.80), ("high", 0.50), ("moderate", 0.25), ("low", 0.05))
MODES = ("verify", "sweep")


def _tier_for_score(score: float) -> str:
    for tier, floor in TIER_FLOORS:
        if score >= floor:
            return tier
    return "negligible"


def _check_string_list(value: object, name: str, failures: list[str]) -> None:
    if not isinstance(value, list) or not all(isinstance(item, str) for item in value):
        failures.append(f"{name} must be a list of strings, got {value!r}")


def validate(document: object) -> list[str]:
    """Every schema violation in the document (empty = valid)."""
    failures: list[str] = []
    if not isinstance(document, dict):
        return [f"top-level value must be an object, got {type(document).__name__}"]

    if document.get("schema") != "repro-gate/v1":
        failures.append(f"schema must be 'repro-gate/v1', got {document.get('schema')!r}")

    decision = document.get("decision")
    if decision not in DECISIONS:
        failures.append(f"decision must be one of {DECISIONS}, got {decision!r}")
    exit_code = document.get("exit_code")
    if not isinstance(exit_code, int):
        failures.append(f"exit_code must be an integer, got {exit_code!r}")
    elif decision in DECISIONS and exit_code != DECISION_EXIT_CODES[decision]:
        failures.append(
            f"exit_code {exit_code} inconsistent with decision {decision!r} "
            f"(expected {DECISION_EXIT_CODES[decision]})"
        )

    reasons = document.get("reasons")
    _check_string_list(reasons, "reasons", failures)
    if isinstance(reasons, list) and not reasons:
        failures.append("reasons must not be empty")
    _check_string_list(document.get("conditions"), "conditions", failures)
    if decision == "conditional" and not document.get("conditions"):
        failures.append("a conditional decision must list its conditions")

    mode = document.get("mode")
    if mode not in MODES:
        failures.append(f"mode must be one of {MODES}, got {mode!r}")
    verdict = document.get("verdict")
    if not isinstance(verdict, dict):
        failures.append(f"verdict must be an object, got {verdict!r}")
    else:
        if verdict.get("verdict") not in ("holds", "violated", "unknown"):
            failures.append(f"verdict.verdict invalid: {verdict.get('verdict')!r}")
        unknown_ids = verdict.get("unknown_fec_ids")
        _check_string_list(unknown_ids, "verdict.unknown_fec_ids", failures)
        if isinstance(unknown_ids, list) and sorted(set(unknown_ids)) != unknown_ids:
            failures.append("verdict.unknown_fec_ids must be sorted and unique")

    risk = document.get("risk")
    if not isinstance(risk, dict):
        failures.append(f"risk must be an object, got {risk!r}")
        return failures
    score = risk.get("score")
    if not isinstance(score, (int, float)) or not 0.0 <= score <= 1.0:
        failures.append(f"risk.score must be a number in [0, 1], got {score!r}")
    tier = risk.get("tier")
    if tier not in TIERS:
        failures.append(f"risk.tier must be one of {TIERS}, got {tier!r}")
    elif isinstance(score, (int, float)) and tier != _tier_for_score(score):
        failures.append(
            f"risk.tier {tier!r} does not match score {score} "
            f"(expected {_tier_for_score(score)!r})"
        )
    signals = risk.get("signals")
    if not isinstance(signals, list) or not signals:
        failures.append(f"risk.signals must be a non-empty list, got {signals!r}")
    else:
        for index, signal in enumerate(signals):
            if not isinstance(signal, dict):
                failures.append(f"risk.signals[{index}] must be an object")
                continue
            for key in ("name", "score", "weight", "factors"):
                if key not in signal:
                    failures.append(f"risk.signals[{index}] missing {key!r}")
    for key in ("proven_violation", "fully_unknown"):
        if not isinstance(risk.get(key), bool):
            failures.append(f"risk.{key} must be a boolean, got {risk.get(key)!r}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("document", help="file holding the repro gate --json output")
    parser.add_argument(
        "--expect-decision",
        choices=DECISIONS,
        default=None,
        help="fail unless the document's decision is exactly this",
    )
    parser.add_argument(
        "--expect-exit",
        type=int,
        default=None,
        help="fail unless the document's exit_code is exactly this "
        "(pass the CLI's observed exit status to cross-check both)",
    )
    args = parser.parse_args(argv)

    try:
        document = json.loads(Path(args.document).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot read gate document: {error}", file=sys.stderr)
        return 1

    failures = validate(document)
    if isinstance(document, dict):
        if args.expect_decision is not None and document.get("decision") != args.expect_decision:
            failures.append(
                f"expected decision {args.expect_decision!r}, got {document.get('decision')!r}"
            )
        if args.expect_exit is not None and document.get("exit_code") != args.expect_exit:
            failures.append(
                f"expected exit code {args.expect_exit}, got {document.get('exit_code')!r}"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: gate document valid — decision={document['decision']} "
        f"exit={document['exit_code']} tier={document['risk']['tier']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
